// Package study reproduces the fast-path bug characterization study of
// Section 3: 172 bug-fix patches across 65 committed fast paths in four Linux
// subsystems (2009–2015). The kernel's patch history is not available here,
// so Dataset synthesizes a deterministic patch-record collection whose
// aggregate statistics equal the published Tables 2, 3 and 4; the Table2/
// Table3/Table4 functions are genuine analyses over those records (they
// compute, not quote, the numbers).
package study

import (
	"fmt"
	"sort"

	"pallas/internal/report"
)

// Subsystem is one studied Linux subsystem.
type Subsystem string

// The four subsystems of the study.
const (
	MM  Subsystem = "MM"
	FS  Subsystem = "FS"
	NET Subsystem = "NET"
	DEV Subsystem = "DEV"
)

// Subsystems lists the studied subsystems in paper order.
func Subsystems() []Subsystem { return []Subsystem{MM, FS, NET, DEV} }

// Study-scope constants from §3.1.
const (
	// TotalFastPathPatches is the number of fast-path patches identified.
	TotalFastPathPatches = 404
	// FastPathPatchShare is their share of all patches in the window.
	FastPathPatchShare = 0.07
	// StudyYearFrom / StudyYearTo bound the patch window.
	StudyYearFrom = 2009
	StudyYearTo   = 2015
)

// Patch is one studied bug-fix patch.
type Patch struct {
	// ID is a stable synthetic identifier.
	ID string
	// Subsystem locates the patch.
	Subsystem Subsystem
	// PathID identifies the committed fast path the bug belongs to
	// (subsystem-local, 0-based).
	PathID int
	// Category is the fast-path aspect of the root cause.
	Category report.Aspect
	// Consequence is the observed failure class.
	Consequence string
	// FixDays is the report-to-commit latency in days.
	FixDays int
	// Year is the commit year.
	Year int
}

// Consequences lists the Table-4 failure classes in paper order.
func Consequences() []string {
	return []string{
		"Incorrect results", "Data loss", "System hang",
		"System crash", "Performance degradation", "Memory leak",
	}
}

// table3Counts holds the published per-subsystem category distribution the
// generator materializes (category order: state, cond, output, fault, ds).
var table3Counts = map[Subsystem][5]int{
	MM:  {21, 10, 12, 9, 10},
	FS:  {4, 3, 13, 7, 14},
	NET: {5, 14, 6, 5, 11},
	DEV: {4, 3, 5, 10, 6},
}

// table4Counts holds the published category × consequence matrix the
// generator materializes (consequence order as in Consequences()).
var table4Counts = map[report.Aspect][6]int{
	report.PathState:        {15, 0, 5, 6, 7, 1},
	report.TriggerCondition: {12, 0, 2, 4, 11, 1},
	report.PathOutput:       {12, 8, 3, 8, 2, 3},
	report.FaultHandling:    {14, 4, 1, 3, 5, 4},
	report.DataStructure:    {16, 7, 4, 6, 7, 1},
}

// pathPlan describes the fast-path population per subsystem: how many
// committed fast paths exist and the maximum bug pile-up on one path.
var pathPlan = map[Subsystem]struct {
	NumPaths int
	MaxBugs  int
	AvgFix   int
}{
	MM:  {16, 19, 3},
	FS:  {21, 17, 8},
	NET: {14, 11, 5},
	DEV: {14, 5, 12},
}

// Dataset synthesizes the 172 patch records. The result is deterministic and
// internally consistent with Tables 2, 3 and 4.
func Dataset() []Patch {
	var out []Patch
	// Per category, consequences are dealt in Table-4 run-length order; the
	// cursor persists across subsystems so the category totals line up.
	consCursor := map[report.Aspect]int{}
	nextConsequence := func(a report.Aspect) string {
		i := consCursor[a]
		consCursor[a]++
		counts := table4Counts[a]
		for ci, name := range Consequences() {
			if i < counts[ci] {
				return name
			}
			i -= counts[ci]
		}
		return Consequences()[0]
	}

	for _, sub := range Subsystems() {
		plan := pathPlan[sub]
		counts := table3Counts[sub]
		total := 0
		for _, c := range counts {
			total += c
		}
		// Path assignment: the worst path accumulates MaxBugs patches; the
		// remainder spreads round-robin over the other paths.
		pathOf := makePathAssignment(total, plan.NumPaths, plan.MaxBugs)
		// Fix-day assignment: mean exactly AvgFix with ±1 jitter pairs.
		fixDays := makeFixDays(total, plan.AvgFix)

		idx := 0
		for ci, aspect := range report.Aspects() {
			for k := 0; k < counts[ci]; k++ {
				out = append(out, Patch{
					ID:          fmt.Sprintf("%s-%03d", sub, idx),
					Subsystem:   sub,
					PathID:      pathOf[idx],
					Category:    aspect,
					Consequence: nextConsequence(aspect),
					FixDays:     fixDays[idx],
					Year:        StudyYearFrom + idx%(StudyYearTo-StudyYearFrom+1),
				})
				idx++
			}
		}
	}
	return out
}

// makePathAssignment maps patch index → path id such that one path receives
// maxBugs patches and every path receives at least one when possible.
func makePathAssignment(total, numPaths, maxBugs int) []int {
	out := make([]int, total)
	i := 0
	for ; i < maxBugs && i < total; i++ {
		out[i] = 0 // the notorious path
	}
	rest := numPaths - 1
	if rest <= 0 {
		rest = 1
	}
	for j := 0; i < total; i, j = i+1, j+1 {
		out[i] = 1 + j%rest
	}
	return out
}

// makeFixDays produces n values with exact mean avg: alternating avg-1/avg+1
// around the base for variety.
func makeFixDays(n, avg int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = avg
	}
	for i := 0; i+1 < n; i += 2 {
		if avg > 1 {
			out[i] = avg - 1
			out[i+1] = avg + 1
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Analyses (the tables are computed from the dataset)
// ---------------------------------------------------------------------------

// Table2Row is one column of Table 2 (the table is printed transposed).
type Table2Row struct {
	Subsystem   Subsystem
	NumPaths    int
	NumPatches  int
	BugsPerAvg  int // rounded average bugs per fast path
	BugsPerMax  int
	FixDaysAvg  int
	distinctSet map[int]bool
}

// Table2 computes the fast-path population statistics from the dataset.
func Table2(ds []Patch) []Table2Row {
	rows := map[Subsystem]*Table2Row{}
	for _, sub := range Subsystems() {
		rows[sub] = &Table2Row{Subsystem: sub, NumPaths: pathPlan[sub].NumPaths, distinctSet: map[int]bool{}}
	}
	perPath := map[Subsystem]map[int]int{}
	fixSum := map[Subsystem]int{}
	for _, p := range ds {
		r := rows[p.Subsystem]
		r.NumPatches++
		if perPath[p.Subsystem] == nil {
			perPath[p.Subsystem] = map[int]int{}
		}
		perPath[p.Subsystem][p.PathID]++
		fixSum[p.Subsystem] += p.FixDays
	}
	var out []Table2Row
	for _, sub := range Subsystems() {
		r := rows[sub]
		maxB := 0
		for _, n := range perPath[sub] {
			if n > maxB {
				maxB = n
			}
		}
		r.BugsPerMax = maxB
		r.BugsPerAvg = roundDiv(r.NumPatches, r.NumPaths)
		if r.NumPatches > 0 {
			r.FixDaysAvg = roundDiv(fixSum[sub], r.NumPatches)
		}
		out = append(out, *r)
	}
	return out
}

func roundDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b/2) / b
}

// Table3Cell is one (subsystem, category) tally with its in-subsystem ratio.
type Table3Cell struct {
	Count int
	Ratio float64
}

// Table3 computes the per-subsystem category distribution from the dataset.
func Table3(ds []Patch) map[Subsystem]map[report.Aspect]Table3Cell {
	counts := map[Subsystem]map[report.Aspect]int{}
	totals := map[Subsystem]int{}
	for _, p := range ds {
		if counts[p.Subsystem] == nil {
			counts[p.Subsystem] = map[report.Aspect]int{}
		}
		counts[p.Subsystem][p.Category]++
		totals[p.Subsystem]++
	}
	out := map[Subsystem]map[report.Aspect]Table3Cell{}
	for sub, m := range counts {
		out[sub] = map[report.Aspect]Table3Cell{}
		for a, n := range m {
			out[sub][a] = Table3Cell{Count: n, Ratio: float64(n) / float64(totals[sub])}
		}
	}
	return out
}

// Table4 computes the category × consequence matrix (count and in-category
// ratio) from the dataset.
func Table4(ds []Patch) map[report.Aspect]map[string]Table3Cell {
	counts := map[report.Aspect]map[string]int{}
	totals := map[report.Aspect]int{}
	for _, p := range ds {
		if counts[p.Category] == nil {
			counts[p.Category] = map[string]int{}
		}
		counts[p.Category][p.Consequence]++
		totals[p.Category]++
	}
	out := map[report.Aspect]map[string]Table3Cell{}
	for a, m := range counts {
		out[a] = map[string]Table3Cell{}
		for c, n := range m {
			out[a][c] = Table3Cell{Count: n, Ratio: float64(n) / float64(totals[a])}
		}
	}
	return out
}

// SubtypeShare documents the published sub-type proportions quoted in §3
// prose (e.g. "Overwriting immutable variables (51%)").
type SubtypeShare struct {
	Category report.Aspect
	Subtype  string
	Share    float64
}

// SubtypeShares returns the §3 prose percentages.
func SubtypeShares() []SubtypeShare {
	return []SubtypeShare{
		{report.PathState, "Overwriting immutable variables", 0.51},
		{report.PathState, "Correlated variables", 0.20},
		{report.PathState, "Uninitialized immutable variables", 0.07},
		{report.TriggerCondition, "Missing trigger condition checking", 0.25},
		{report.TriggerCondition, "Incomplete implementation of condition checking", 0.20},
		{report.TriggerCondition, "Incorrect order of condition checking", 0.12},
		{report.PathOutput, "Unexpected output", 0.24},
		{report.PathOutput, "Mismatching output", 0.39},
		{report.PathOutput, "Missing output checking", 0.08},
		{report.DataStructure, "Suboptimal organization of data structures", 0.31},
		{report.DataStructure, "Stale value caused by uncoordinated updates", 0.26},
	}
}

// ConsequenceLikelihood is one predicted failure class for a warning.
type ConsequenceLikelihood struct {
	Consequence string
	Probability float64
}

// LikelyConsequences ranks the failure classes a bug of the given aspect
// historically causes, computed from the Table-4 distribution. Checkers can
// attach this to warnings to convey blast radius ("fault-handling bugs cause
// crashes 10% of the time and silent wrong results 45%").
func LikelyConsequences(ds []Patch, a report.Aspect) []ConsequenceLikelihood {
	counts := map[string]int{}
	total := 0
	for _, p := range ds {
		if p.Category == a {
			counts[p.Consequence]++
			total++
		}
	}
	var out []ConsequenceLikelihood
	for _, c := range Consequences() {
		if counts[c] == 0 {
			continue
		}
		out = append(out, ConsequenceLikelihood{
			Consequence: c,
			Probability: float64(counts[c]) / float64(total),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Probability > out[j].Probability })
	return out
}

// PathsStudied returns the number of committed fast paths in the study (65).
func PathsStudied() int {
	n := 0
	for _, sub := range Subsystems() {
		n += pathPlan[sub].NumPaths
	}
	return n
}

// SortPatches orders patches deterministically by ID (helper for rendering).
func SortPatches(ds []Patch) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].ID < ds[j].ID })
}
