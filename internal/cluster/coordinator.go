package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pallas"
	"pallas/internal/backoff"
	"pallas/internal/failpoint"
	"pallas/internal/guard"
	"pallas/internal/journal"
	"pallas/internal/metrics"
	"pallas/internal/rcache"
)

// Options configures a Coordinator. The zero value is usable: defaults are
// filled in by NewCoordinator.
type Options struct {
	// Client performs worker HTTP requests; nil means a fresh client.
	// Per-request deadlines come from RequestTimeout, not Client.Timeout.
	Client *http.Client
	// HeartbeatInterval is how often each worker is probed for liveness.
	// Default 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive failed probes (or failed unit
	// dispatches) evict a worker. Default 3.
	HeartbeatMisses int
	// RequestTimeout bounds one unit dispatch end to end — a worker that
	// hangs mid-analysis holds the unit at most this long before it counts
	// as a transient failure and the unit is requeued. Default 2m.
	RequestTimeout time.Duration
	// Inflight is how many units one worker analyzes concurrently (the
	// coordinator-side pipeline depth; the worker's own admission control
	// is the authority and sheds with 503 beyond its capacity). Default 2.
	Inflight int
	// Retries is how many re-dispatches a unit gets after its first attempt
	// fails transiently (worker death, hang, panic, budget blowout,
	// injected fault); past them the unit is quarantined — the same policy
	// AnalyzeBatch applies in-process. Default 2.
	Retries int
	// RetryBackoff is the base delay before a requeued unit is eligible for
	// re-dispatch; the window doubles per attempt with full jitter
	// (backoff.Delay — uniform over the window, so simultaneously failing
	// workers don't produce synchronized retry storms). The unit waits in
	// queue; no dispatcher sleeps. Default 100ms.
	RetryBackoff time.Duration
	// HedgeAfter is the floor of the hedging threshold: a unit in flight
	// longer than max(HedgeAfter, p95 × 3) is speculatively re-dispatched
	// to the next healthy worker, first completion winning. Default 1s;
	// negative disables hedging.
	HedgeAfter time.Duration
	// HedgeMax caps concurrently outstanding hedge dispatches across the
	// run — the speculative-work budget. Default 4; <= -1 disables.
	HedgeMax int
	// IntegrityLimit evicts a worker after this many end-to-end content
	// checksum failures (a corrupting worker is worse than a dead one: it
	// lies). Default 2.
	IntegrityLimit int
	// JournalPath, when set, records every assignment (non-terminal, with
	// its lease epoch) and completion (terminal, with report and pathdb
	// bytes) in a checkpoint journal, making the coordinator itself
	// crash-recoverable.
	JournalPath string
	// Resume replays units whose latest journal record is terminal and
	// still matches their content hash instead of re-dispatching them.
	Resume bool
	// GroupCommit opens the journal with batched fsyncs.
	GroupCommit bool
	// WorkerlessGrace is how long the coordinator tolerates having zero
	// live workers while units are pending (covering supervisor restarts)
	// before failing the run. Default 15s.
	WorkerlessGrace time.Duration
	// CachePeers enables the shared cache tier: every worker's serve engine
	// doubles as a cache endpoint, and the coordinator distributes the
	// epoch-fenced peer map to all live workers on each membership change.
	CachePeers bool
	// CacheReplicas is the tier's replication factor, forwarded in the peer
	// map. <= 0 means the tier default.
	CacheReplicas int
	// Metrics receives the cluster instruments; nil means metrics.Default.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives progress lines (evictions, requeues,
	// hedges, probations, rejected completions) — the CLI points it at
	// stderr.
	Logf func(format string, args ...any)
}

// Outcome is the terminal result of one unit, in input order. Either a
// replayed/completed analysis (Report/Paths set) or a failure (Err set).
type Outcome struct {
	// Unit and Hash identify the unit.
	Unit string
	Hash string
	// Status is the journal-status classification of the outcome.
	Status journal.Status
	// Report and Paths are the unit's marshaled report and path database —
	// byte-identical to a single-process analysis of the same unit.
	Report json.RawMessage
	Paths  json.RawMessage
	// Diagnostics carries the unit's degradation record.
	Diagnostics []guard.Diagnostic
	// Err is the failure rendered as text for failed/quarantined units.
	Err string
	// Attempts counts dispatch attempts this run (0 for replayed units;
	// hedges are not attempts).
	Attempts int
	// Skipped reports the unit was replayed from the journal on resume.
	Skipped bool
	// Worker is the worker that completed the unit (or was last assigned).
	Worker string
	// Epoch is the lease epoch of the winning completion (0 for replayed
	// or quarantined units).
	Epoch int64
	// Degraded and Warnings mirror the report.
	Degraded bool
	Warnings int
	// CacheHit reports the completing worker served its cache.
	CacheHit bool
}

// Stats summarizes one cluster run.
type Stats struct {
	Units           int
	Completed       int
	Skipped         int
	Failed          int
	Quarantined     int
	Requeues        int
	Evictions       int
	HeartbeatMisses int
	DupCompletions  int
	Backpressure    int
	CacheHits       int
	// Hedges counts speculative re-dispatches; HedgeWins counts the ones
	// whose completion won the race.
	Hedges    int
	HedgeWins int
	// StaleCompletions counts completions rejected by the lease fence: the
	// epoch they carried was no longer valid and no outcome existed yet —
	// the zombie-worker window, closed.
	StaleCompletions int
	// IntegrityFailures counts completions whose end-to-end content
	// checksum did not match their bytes.
	IntegrityFailures int
	// Probations counts health-score demotions.
	Probations int
	// Completion latency quantiles (ms) over the most recent sample window.
	LatencyP50MS float64
	LatencyP95MS float64
	LatencyP99MS float64
	// Journal recovery, as in BatchStats.
	JournalRecovered   int
	JournalTornTail    bool
	JournalQuarantined int
}

// WorkerHealth is one row of the coordinator's per-worker table
// (/healthz?verbose=1 on the status server).
type WorkerHealth struct {
	Addr            string  `json:"addr"`
	Live            bool    `json:"live"`
	State           string  `json:"state"` // healthy | probation | evicted
	Score           float64 `json:"score"`
	LatencyEWMAMS   float64 `json:"latency_ewma_ms"`
	ErrorRate       float64 `json:"error_rate"`
	Queue           int     `json:"queue"`
	InFlight        int     `json:"in_flight"`
	Done            int64   `json:"done"`
	Requeues        int64   `json:"requeues"`
	HeartbeatMisses int64   `json:"heartbeat_misses"`
	IntegrityFails  int64   `json:"integrity_fails"`
	LastBeatAgeMS   int64   `json:"last_beat_age_ms"`
	Paused          bool    `json:"paused"`
}

// lease is one fenced grant of one task to one worker. Every dispatch —
// first attempt, retry, or hedge — gets a fresh lease with a monotonically
// increasing epoch; the worker echoes the epoch in its result, and only a
// completion whose lease is still valid may record an outcome. Eviction
// and hedging invalidate leases without waiting for their connections, so
// a zombie worker's late completion is rejected by the fence instead of
// racing the re-dispatch.
type lease struct {
	epoch  int64
	worker string
	hedge  bool
	start  time.Time
	ctx    context.Context
	cancel context.CancelFunc
}

type task struct {
	idx       int
	unit      pallas.Unit
	hash      string
	attempts  int
	hedges    int
	owner     string           // worker addr of the most recent lease
	queuedOn  string           // worker addr whose queue holds it while pending
	notBefore time.Time        // retry-backoff eligibility
	leases    map[int64]*lease // outstanding leases by epoch
	outcome   *Outcome
}

type workerState struct {
	addr           string
	live           bool
	queue          []*task
	inflight       int
	misses         int
	lastBeat       time.Time
	pausedUntil    time.Time
	done           int64
	requeues       int64
	hbMisses       int64
	integrityFails int64
	h              health
	stop           chan struct{}
}

// Coordinator owns a cluster run: it shards units over workers, keeps them
// alive or evicts them, and merges results deterministically. Create with
// NewCoordinator, register workers with AddWorker (before or during Run),
// then call Run once.
type Coordinator struct {
	opts   Options
	client *http.Client
	reg    *metrics.Registry
	jr     *journal.Journal

	mu        sync.Mutex
	cond      *sync.Cond
	ring      *Ring
	workers   map[string]*workerState
	tasks     []*task
	orphans   []*task // pending tasks with no live worker to queue on
	pending   int
	running   bool
	closed    bool
	fatalErr  error
	stats     Stats
	epoch     int64 // lease epoch counter; monotonic across the run
	peerEpoch int64 // shared-cache-tier map epoch; bumped per membership change
	hedgesOut int   // outstanding hedge leases
	latWin    [latWindowSize]float64
	latN      int

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	gWorkersLive *metrics.Gauge
	gHealthMin   *metrics.Gauge
	gProbation   *metrics.Gauge
	mRequeues    *metrics.Counter
	mHBMisses    *metrics.Counter
	mEvictions   *metrics.Counter
	mDups        *metrics.Counter
	mUnitsDone   *metrics.Counter
	mBackpress   *metrics.Counter
	mHedges      *metrics.Counter
	mHedgeWins   *metrics.Counter
	mStale       *metrics.Counter
	mIntegrity   *metrics.Counter
	mProbations  *metrics.Counter
}

// NewCoordinator builds a coordinator (opening the journal when configured).
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.HeartbeatMisses <= 0 {
		opts.HeartbeatMisses = 3
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 2 * time.Minute
	}
	if opts.Inflight <= 0 {
		opts.Inflight = 2
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = time.Second
	}
	if opts.HedgeMax == 0 {
		opts.HedgeMax = 4
	}
	if opts.IntegrityLimit <= 0 {
		opts.IntegrityLimit = 2
	}
	if opts.WorkerlessGrace <= 0 {
		opts.WorkerlessGrace = 15 * time.Second
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	c := &Coordinator{
		opts:    opts,
		client:  opts.Client,
		reg:     reg,
		ring:    NewRing(),
		workers: map[string]*workerState{},

		gWorkersLive: reg.Gauge(metrics.MetricClusterWorkersLive, "cluster workers currently live"),
		gHealthMin:   reg.Gauge(metrics.MetricClusterWorkerHealthMin, "lowest live-worker health score, x1000"),
		gProbation:   reg.Gauge(metrics.MetricClusterWorkersProbation, "workers currently on probation"),
		mRequeues:    reg.Counter(metrics.MetricClusterRequeues, "units requeued after worker failure or transient error"),
		mHBMisses:    reg.Counter(metrics.MetricClusterHeartbeatMisses, "missed worker heartbeats"),
		mEvictions:   reg.Counter(metrics.MetricClusterEvictions, "workers evicted"),
		mDups:        reg.Counter(metrics.MetricClusterDupCompletions, "duplicate completions suppressed by content hash"),
		mUnitsDone:   reg.Counter(metrics.MetricClusterUnitsDone, "units with a terminal outcome recorded"),
		mBackpress:   reg.Counter(metrics.MetricClusterBackpressure, "dispatches shed by worker overload control and requeued"),
		mHedges:      reg.Counter(metrics.MetricClusterHedges, "speculative hedge dispatches launched"),
		mHedgeWins:   reg.Counter(metrics.MetricClusterHedgeWins, "hedge dispatches that won their race"),
		mStale:       reg.Counter(metrics.MetricClusterStaleCompletions, "completions rejected for a stale lease epoch"),
		mIntegrity:   reg.Counter(metrics.MetricClusterIntegrityFailures, "completions failing the end-to-end content checksum"),
		mProbations:  reg.Counter(metrics.MetricClusterProbations, "health-score demotions to probation"),
	}
	c.cond = sync.NewCond(&c.mu)
	if opts.JournalPath != "" {
		jr, err := journal.OpenOptions(opts.JournalPath, journal.Options{GroupCommit: opts.GroupCommit})
		if err != nil {
			return nil, err
		}
		c.jr = jr
		rec := jr.Recovery()
		c.stats.JournalRecovered = rec.Records
		c.stats.JournalTornTail = rec.TornTail
		c.stats.JournalQuarantined = rec.Quarantined
	} else if opts.Resume {
		return nil, errors.New("cluster: Options.Resume requires JournalPath")
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// AddWorker registers a worker address and starts dispatching to it. Safe
// to call before or during Run (the supervisor calls it when a restarted
// worker comes up). Re-adding a live worker is a no-op.
func (c *Coordinator) AddWorker(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if w, ok := c.workers[addr]; ok && w.live {
		return
	}
	w := &workerState{addr: addr, live: true, lastBeat: time.Now(), stop: make(chan struct{})}
	c.workers[addr] = w
	c.ring.Add(addr)
	c.gWorkersLive.Set(c.liveCountLocked())
	// Re-home orphaned tasks now that a worker exists.
	for _, t := range c.orphans {
		t.queuedOn = addr
		w.queue = append(w.queue, t)
	}
	c.orphans = nil
	c.pushPeerMapLocked()
	if c.running {
		c.startWorkerLocked(w)
	}
	c.cond.Broadcast()
}

// pushPeerMapLocked distributes a freshly fenced peer map to every live
// worker after a membership change. Best-effort and asynchronous: a worker
// that misses a push refuses nothing locally — it keeps serving under its
// older epoch until the next push reaches it (or it is evicted), and
// requesters holding the newer map still content-verify every byte they get
// from it. A worker that rejoins after eviction gets the then-current epoch
// with everyone else, which is what fences its zombie twin: any process
// still running under the old epoch is refused by every peer.
func (c *Coordinator) pushPeerMapLocked() {
	if !c.opts.CachePeers || c.closed {
		return
	}
	c.peerEpoch++
	pm := PeerMap{Epoch: c.peerEpoch, Replicas: c.opts.CacheReplicas}
	for _, addr := range sortedWorkerAddrs(c.workers) {
		if w := c.workers[addr]; w != nil && w.live {
			pm.Peers = append(pm.Peers, addr)
		}
	}
	body, err := json.Marshal(pm)
	if err != nil {
		return
	}
	targets := append([]string(nil), pm.Peers...)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for _, addr := range targets {
			c.postPeerMap(addr, body)
		}
	}()
}

// postPeerMap delivers one peer-map push; failures are logged, not acted on
// (the next membership change re-pushes, and the tier is safe under a stale
// map by construction).
func (c *Coordinator) postPeerMap(addr string, body []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+PeerMapPath, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		c.logf("cluster: peer map push to %s: %v", addr, err)
		return
	}
	resp.Body.Close()
}

// RemoveWorker evicts a worker (the supervisor calls it when a worker
// process dies before the heartbeat notices); its queued and in-flight
// units are requeued to the survivors.
func (c *Coordinator) RemoveWorker(addr string, reason error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok && w.live {
		c.evictLocked(w, reason)
	}
}

func (c *Coordinator) liveCountLocked() int64 {
	var n int64
	for _, w := range c.workers {
		if w.live {
			n++
		}
	}
	return n
}

// startWorkerLocked launches a worker's dispatcher and heartbeat loops.
func (c *Coordinator) startWorkerLocked(w *workerState) {
	for i := 0; i < c.opts.Inflight; i++ {
		c.wg.Add(1)
		go c.dispatchLoop(w)
	}
	c.wg.Add(1)
	go c.heartbeatLoop(w)
}

// Run dispatches units across the registered workers and blocks until every
// unit has a terminal outcome (or the run fails fatally: context canceled,
// or no live workers for longer than WorkerlessGrace). Outcomes are in
// input order regardless of which worker finished what, when — the
// determinism anchor for merged output. Run may be called once.
func (c *Coordinator) Run(ctx context.Context, units []pallas.Unit) ([]Outcome, Stats, error) {
	c.mu.Lock()
	if c.running || c.closed {
		c.mu.Unlock()
		return nil, c.stats, errors.New("cluster: Run called twice")
	}
	c.running = true
	c.runCtx, c.runCancel = context.WithCancel(ctx)
	c.stats.Units = len(units)

	c.tasks = make([]*task, len(units))
	for i, u := range units {
		t := &task{idx: i, unit: u, hash: u.Hash(), leases: map[int64]*lease{}}
		c.tasks[i] = t
		if c.jr != nil && c.opts.Resume {
			if rec, ok := c.jr.Lookup(u.Name); ok && rec.Hash == t.hash && rec.Status.Terminal() {
				t.outcome = outcomeFromRecord(t, rec)
				c.stats.Skipped++
				continue
			}
		}
		c.pending++
		c.enqueueLocked(t, "")
	}
	for _, w := range c.workers {
		if w.live {
			c.startWorkerLocked(w)
		}
	}
	// Scheduler tick: retry-backoff eligibility, worker pauses, health
	// scores, hedge scans.
	c.wg.Add(1)
	go c.tick()
	// Watchdogs: context cancellation and worker famine.
	c.wg.Add(1)
	go c.watch()

	for c.pending > 0 && c.fatalErr == nil {
		c.cond.Wait()
	}
	err := c.fatalErr
	c.closed = true
	c.runCancel()
	for _, w := range c.workers {
		if w.live {
			close(w.stop)
			w.live = false
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jr != nil {
		c.jr.Flush()
		c.jr.Close()
	}
	out := make([]Outcome, len(c.tasks))
	for i, t := range c.tasks {
		if t.outcome != nil {
			out[i] = *t.outcome
		} else {
			out[i] = Outcome{Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusFailed,
				Err: "cluster: run aborted before completion", Attempts: t.attempts}
		}
	}
	// The returned snapshot carries the same latency quantiles Stats()
	// reports, so callers need not race a second call after Run returns.
	final := c.stats
	final.LatencyP50MS, final.LatencyP95MS, final.LatencyP99MS = c.latQuantilesLocked()
	if err != nil {
		return out, final, fmt.Errorf("cluster: run failed: %w", err)
	}
	return out, final, nil
}

// tick is the scheduler heartbeat: every 25ms it wakes dispatchers (so
// retry-backoff eligibility and backpressure pauses are re-evaluated
// without per-task timers), refreshes health scores, and scans for units
// past the hedge threshold.
func (c *Coordinator) tick() {
	defer c.wg.Done()
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.runCtx.Done():
			return
		case <-t.C:
			c.mu.Lock()
			if !c.closed {
				now := time.Now()
				c.updateHealthLocked(now)
				c.hedgeScanLocked(now)
			}
			c.cond.Broadcast()
			c.mu.Unlock()
		}
	}
}

// watch fails the run when the context dies or no worker has been live for
// WorkerlessGrace while units are still pending.
func (c *Coordinator) watch() {
	defer c.wg.Done()
	var zeroSince time.Time
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.runCtx.Done():
			c.mu.Lock()
			if c.pending > 0 && c.fatalErr == nil && !c.closed {
				c.fatalErr = c.runCtx.Err()
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		case <-t.C:
			c.mu.Lock()
			if c.closed || c.pending == 0 {
				c.mu.Unlock()
				return
			}
			if c.liveCountLocked() == 0 {
				if zeroSince.IsZero() {
					zeroSince = time.Now()
				} else if time.Since(zeroSince) > c.opts.WorkerlessGrace {
					c.fatalErr = fmt.Errorf("no live workers for %s with %d unit(s) pending",
						c.opts.WorkerlessGrace, c.pending)
					c.cond.Broadcast()
					c.mu.Unlock()
					return
				}
			} else {
				zeroSince = time.Time{}
			}
			c.mu.Unlock()
		}
	}
}

// enqueueLocked queues a pending task on its ring owner (or the
// shortest-queued live worker when the owner is excluded, dead, or on
// probation with a healthy alternative). exclude names a worker to avoid —
// the one that just failed the task.
func (c *Coordinator) enqueueLocked(t *task, exclude string) {
	target := ""
	if owner := c.ring.Owner(t.hash); owner != "" && owner != exclude {
		// Health bias: divert from a probation owner while any healthy
		// worker exists; a fully degraded fleet keeps ring placement.
		if w := c.workers[owner]; w == nil || !w.h.probation || !c.hasHealthyLocked(exclude) {
			target = owner
		}
	}
	if target == "" {
		preferHealthy := c.hasHealthyLocked(exclude)
		best := -1
		for _, w := range c.workers {
			if !w.live || w.addr == exclude {
				continue
			}
			if preferHealthy && w.h.probation {
				continue
			}
			if best < 0 || len(w.queue) < best {
				best = len(w.queue)
				target = w.addr
			}
		}
	}
	if target == "" {
		// No live worker (or only the excluded one, which is being
		// evicted): park the task; AddWorker drains orphans.
		if exclude != "" {
			if w := c.workers[exclude]; w != nil && w.live {
				t.queuedOn = exclude
				w.queue = append(w.queue, t)
				return
			}
		}
		t.queuedOn = ""
		c.orphans = append(c.orphans, t)
		return
	}
	t.queuedOn = target
	c.workers[target].queue = append(c.workers[target].queue, t)
}

// dequeueLocked removes t from whatever queue holds it (used when a late
// completion for a requeued task arrives before its re-dispatch).
func (c *Coordinator) dequeueLocked(t *task) {
	if t.queuedOn != "" {
		if w := c.workers[t.queuedOn]; w != nil {
			for i, q := range w.queue {
				if q == t {
					w.queue = append(w.queue[:i], w.queue[i+1:]...)
					break
				}
			}
		}
		t.queuedOn = ""
		return
	}
	for i, q := range c.orphans {
		if q == t {
			c.orphans = append(c.orphans[:i], c.orphans[i+1:]...)
			return
		}
	}
}

// isQueuedLocked reports whether t currently sits in some worker's queue or
// the orphan list.
func (c *Coordinator) isQueuedLocked(t *task) bool {
	if t.queuedOn != "" {
		return true
	}
	for _, q := range c.orphans {
		if q == t {
			return true
		}
	}
	return false
}

// next blocks until the worker has a unit to run (own queue first, then
// stolen from the longest live queue), the worker dies, or the run ends.
// A worker on probation runs at most one probe unit at a time and never
// steals — load drains away from it until its score recovers. Returns a
// fresh lease for the dispatch, or nils when the dispatcher should exit.
func (c *Coordinator) next(w *workerState) (*task, *lease) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed || !w.live || c.fatalErr != nil {
			return nil, nil
		}
		now := time.Now()
		if now.After(w.pausedUntil) && (!w.h.probation || w.inflight == 0) {
			if t := c.popEligibleLocked(w, now); t != nil {
				return t, c.newLeaseLocked(t, w, false)
			}
			if !w.h.probation {
				if t := c.stealLocked(w, now); t != nil {
					return t, c.newLeaseLocked(t, w, false)
				}
			}
		}
		c.cond.Wait()
	}
}

// popEligibleLocked removes the first task in w's queue whose retry backoff
// has elapsed.
func (c *Coordinator) popEligibleLocked(w *workerState, now time.Time) *task {
	for i, t := range w.queue {
		if t.notBefore.After(now) {
			continue
		}
		w.queue = append(w.queue[:i], w.queue[i+1:]...)
		t.queuedOn = ""
		return t
	}
	return nil
}

// stealLocked takes an eligible task from the tail of the longest live
// queue — the classic work-stealing choice: the tail is the work its owner
// would reach last, so stealing it disturbs cache locality least.
func (c *Coordinator) stealLocked(w *workerState, now time.Time) *task {
	var victim *workerState
	for _, u := range c.workers {
		if u == w || !u.live || len(u.queue) == 0 {
			continue
		}
		if victim == nil || len(u.queue) > len(victim.queue) {
			victim = u
		}
	}
	if victim == nil {
		return nil
	}
	for i := len(victim.queue) - 1; i >= 0; i-- {
		t := victim.queue[i]
		if t.notBefore.After(now) {
			continue
		}
		victim.queue = append(victim.queue[:i], victim.queue[i+1:]...)
		t.queuedOn = ""
		return t
	}
	return nil
}

// newLeaseLocked grants t to w under a fresh epoch. Ordinary dispatches
// consume an attempt; hedges consume the hedge budget instead.
func (c *Coordinator) newLeaseLocked(t *task, w *workerState, hedge bool) *lease {
	c.epoch++
	ctx, cancel := context.WithCancel(c.runCtx)
	ls := &lease{epoch: c.epoch, worker: w.addr, hedge: hedge,
		start: time.Now(), ctx: ctx, cancel: cancel}
	t.leases[ls.epoch] = ls
	t.owner = w.addr
	if hedge {
		c.hedgesOut++
	} else {
		t.attempts++
	}
	w.inflight++
	return ls
}

// resolveLeaseLocked invalidates one lease: removes it from the task,
// releases the worker's in-flight slot, and returns the hedge budget.
// Returns false when the lease was already resolved — the caller's
// response is stale and must not mutate task state. It does NOT cancel the
// lease's connection: eviction deliberately leaves zombie connections
// racing so the fence (not luck) is what rejects them; completion cancels
// losers explicitly.
func (c *Coordinator) resolveLeaseLocked(t *task, ls *lease) bool {
	cur, ok := t.leases[ls.epoch]
	if !ok || cur != ls {
		return false
	}
	delete(t.leases, ls.epoch)
	if w := c.workers[ls.worker]; w != nil {
		w.inflight--
	}
	if ls.hedge {
		c.hedgesOut--
	}
	return true
}

// dispatchLoop is one dispatcher lane of one worker: take the next unit
// under a fresh lease, send it, classify the outcome. A worker has
// Options.Inflight lanes; hedge dispatches run on extra goroutines.
func (c *Coordinator) dispatchLoop(w *workerState) {
	defer c.wg.Done()
	for {
		t, ls := c.next(w)
		if t == nil {
			return
		}
		c.dispatchLease(w, t, ls)
	}
}

// dispatchLease performs one leased dispatch end to end. When the
// coord-send failpoint injects duplicate delivery, the same frame (same
// epoch) is sent a second time and both responses are classified — the
// fence must suppress the echo.
func (c *Coordinator) dispatchLease(w *workerState, t *task, ls *lease) {
	defer ls.cancel()
	c.journalAssign(t, w, ls)
	for sends := 0; ; sends++ {
		payload, shed, retryAfter, dup, err := c.send(t, w, ls)
		switch {
		case err != nil:
			c.transportFail(w, t, ls, err)
		case shed:
			c.backpressured(w, t, ls, retryAfter)
		default:
			c.finishResult(w, t, ls, payload)
		}
		if !dup || err != nil || shed || sends > 0 {
			return
		}
	}
}

func (c *Coordinator) journalAssign(t *task, w *workerState, ls *lease) {
	if c.jr == nil {
		return
	}
	if err := c.jr.Append(journal.Record{
		Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusAssigned,
		Attempt: t.attempts, Worker: w.addr, Epoch: ls.epoch,
	}); err != nil {
		c.logf("cluster: journal assign %s: %v", t.unit.Name, err)
	}
}

// slowReader drips its payload in small chunks with a pause between them —
// the coord-send=drip fault: a trickling connection that never quite
// stalls out.
type slowReader struct {
	r     io.Reader
	chunk int
	pause time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	n, err := s.r.Read(p)
	if n > 0 {
		time.Sleep(s.pause)
	}
	return n, err
}

// send performs one framed dispatch under ls. Returns the decoded result,
// or shed=true with the worker's Retry-After hint, or a transport error.
// dup=true means the coord-send failpoint asked for duplicate delivery and
// the caller should send the same frame once more.
func (c *Coordinator) send(t *task, w *workerState, ls *lease) (ResultPayload, bool, time.Duration, bool, error) {
	var zero ResultPayload
	body, err := EncodeFrame(FrameAssign, AssignPayload{
		Unit: t.unit.Name, Hash: t.hash, Source: t.unit.Source, Spec: t.unit.Spec,
		Attempt: t.attempts, Epoch: ls.epoch,
	})
	if err != nil {
		return zero, false, 0, false, err
	}
	dup := false
	var reqBody io.Reader = bytes.NewReader(body)
	switch f := failpoint.Net(failpoint.CoordSend, t.unit.Name); f.Act {
	case failpoint.NetDrop:
		return zero, false, 0, false, fmt.Errorf("cluster: injected link drop dispatching %s", t.unit.Name)
	case failpoint.NetCorrupt:
		reqBody = bytes.NewReader(failpoint.Corrupt(body))
	case failpoint.NetDup:
		dup = true
	case failpoint.NetDrip:
		reqBody = &slowReader{r: bytes.NewReader(body), chunk: 64, pause: f.Sleep}
	}
	ctx, cancel := context.WithTimeout(ls.ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+w.addr+"/v1/cluster/unit", reqBody)
	if err != nil {
		return zero, false, 0, dup, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return zero, false, 0, dup, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var payload ResultPayload
		if err := DecodeFrame(resp.Body, FrameResult, &payload); err != nil {
			return zero, false, 0, dup, err
		}
		if payload.Hash != t.hash {
			return zero, false, 0, dup, fmt.Errorf("result hash mismatch: got %s, want %s",
				payload.Hash, t.hash)
		}
		if payload.Epoch != 0 && payload.Epoch != ls.epoch {
			return zero, false, 0, dup, fmt.Errorf("result epoch mismatch: got %d, want %d",
				payload.Epoch, ls.epoch)
		}
		return payload, false, 0, dup, nil
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
		retry := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		// The header is whole seconds; the JSON body's retry_after_ms is
		// the precise, jittered hint. Honor it at ms resolution so a fleet
		// of shed dispatches doesn't re-hit the worker on one fixed cadence.
		if body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096)); rerr == nil {
			var eb struct {
				RetryAfterMS int64 `json:"retry_after_ms"`
			}
			if json.Unmarshal(body, &eb) == nil && eb.RetryAfterMS > 0 {
				retry = time.Duration(eb.RetryAfterMS) * time.Millisecond
			}
		}
		return zero, true, retry, dup, nil
	default:
		return zero, false, 0, dup, fmt.Errorf("worker %s: status %d", w.addr, resp.StatusCode)
	}
}

// transportFail handles a dispatch that never produced a result: the worker
// died, hung past RequestTimeout, or answered garbage. The unit is requeued
// (bounded), and the miss counts toward the worker's eviction threshold —
// a crashed worker is usually detected here first, before the heartbeat.
// A canceled loser or an already-fenced lease lands here too and is
// dropped without penalty.
func (c *Coordinator) transportFail(w *workerState, t *task, ls *lease, err error) {
	c.mu.Lock()
	if !c.resolveLeaseLocked(t, ls) {
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	w.misses++
	c.stats.HeartbeatMisses++
	w.hbMisses++
	c.mHBMisses.Inc()
	w.h.observeError()
	evict := w.live && w.misses >= c.opts.HeartbeatMisses
	c.requeueIfUnheldLocked(w, t, err)
	if evict {
		c.evictLocked(w, fmt.Errorf("dispatch failures: %w", err))
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.logf("cluster: %s on %s failed (%v), requeued", t.unit.Name, w.addr, err)
}

// backpressured handles a 503/429 shed: the unit goes back to the queue
// without spending an attempt, and the worker is paused for the hint.
func (c *Coordinator) backpressured(w *workerState, t *task, ls *lease, retryAfter time.Duration) {
	if retryAfter > 2*time.Second {
		retryAfter = 2 * time.Second
	}
	c.mu.Lock()
	if c.resolveLeaseLocked(t, ls) {
		if !ls.hedge {
			t.attempts-- // admission was refused; the analysis never started
		}
		w.pausedUntil = time.Now().Add(retryAfter)
		c.stats.Backpressure++
		c.mBackpress.Inc()
		c.requeueShedLocked(t)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// requeueShedLocked returns a shed task to the queue without the failure
// bookkeeping (no requeue counter, no backoff — admission refused, nothing
// ran).
func (c *Coordinator) requeueShedLocked(t *task) {
	if t.outcome != nil || len(t.leases) > 0 || c.isQueuedLocked(t) {
		return
	}
	t.owner = ""
	c.enqueueLocked(t, "")
}

// finishResult classifies a decoded worker result. Completions carrying a
// content checksum are verified end to end before they may record an
// outcome — the frame CRC protects the wire hop, the content checksum
// protects the whole path from the producing analysis to the merge.
func (c *Coordinator) finishResult(w *workerState, t *task, ls *lease, p ResultPayload) {
	switch p.Status {
	case "ok", "degraded":
		if p.Sum != "" {
			if got := rcache.ContentSum(p.Report, p.Paths); got != p.Sum {
				c.integrityFail(w, t, ls, p.Sum, got)
				return
			}
		}
		c.complete(w, t, ls, p)
	case "failed":
		if p.Transient {
			c.transientAnalysisFail(w, t, ls, errors.New(p.Err))
		} else {
			c.terminalFail(w, t, ls, p)
		}
	default:
		c.transportFail(w, t, ls, fmt.Errorf("worker %s: unknown result status %q", w.addr, p.Status))
	}
}

// complete records a successful analysis — exactly once per unit, enforced
// by the lease fence. A completion whose lease is gone is classified: an
// outcome already exists → duplicate (a hedge loser or injected duplicate
// delivery; worker output is deterministic, the bytes match); no outcome →
// stale (a zombie worker's late result after eviction) and rejected — the
// re-dispatch, not the zombie, gets to record the unit.
func (c *Coordinator) complete(w *workerState, t *task, ls *lease, p ResultPayload) {
	c.mu.Lock()
	w.misses = 0
	if !c.resolveLeaseLocked(t, ls) || t.outcome != nil {
		c.rejectCompletionLocked(w, t, ls)
		return
	}
	elapsed := time.Since(ls.start)
	w.h.observeOK()
	w.h.observeLatency(elapsed)
	c.observeLatencyLocked(elapsed)
	// Losers: invalidate and cancel any sibling leases still racing.
	for _, sib := range siblings(t) {
		c.resolveLeaseLocked(t, sib)
		sib.cancel()
	}
	c.dequeueLocked(t) // a late completion may race its own requeue
	t.owner = ""
	status := journal.StatusOK
	if p.Status == "degraded" {
		status = journal.StatusDegraded
	}
	t.outcome = &Outcome{
		Unit: t.unit.Name, Hash: t.hash, Status: status,
		Report: p.Report, Paths: p.Paths, Diagnostics: p.Diagnostics,
		Attempts: t.attempts, Worker: w.addr, Epoch: ls.epoch,
		Degraded: p.Degraded, Warnings: p.Warnings, CacheHit: p.Cache == "hit",
	}
	if ls.hedge {
		c.stats.HedgeWins++
		c.mHedgeWins.Inc()
		c.logf("cluster: hedge won %s on %s (epoch %d)", t.unit.Name, w.addr, ls.epoch)
	}
	if p.Cache == "hit" {
		c.stats.CacheHits++
	}
	c.stats.Completed++
	c.mUnitsDone.Inc()
	w.done++
	c.pending--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.journalTerminal(t)
}

// siblings returns t's outstanding leases as a slice (safe to resolve while
// iterating).
func siblings(t *task) []*lease {
	out := make([]*lease, 0, len(t.leases))
	for _, l := range t.leases {
		out = append(out, l)
	}
	return out
}

// rejectCompletionLocked classifies and drops a completion that lost the
// fence. Caller holds c.mu; this releases it.
func (c *Coordinator) rejectCompletionLocked(w *workerState, t *task, ls *lease) {
	if t.outcome != nil {
		c.stats.DupCompletions++
		c.mDups.Inc()
		c.cond.Broadcast()
		c.mu.Unlock()
		c.logf("cluster: duplicate completion of %s (hash %.12s) from %s suppressed",
			t.unit.Name, t.hash, w.addr)
		return
	}
	c.stats.StaleCompletions++
	c.mStale.Inc()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.logf("cluster: stale completion of %s (epoch %d) from %s rejected by lease fence",
		t.unit.Name, ls.epoch, w.addr)
}

// terminalFail records a deterministic analysis failure (no retry: the
// input itself is bad, as in AnalyzeBatch).
func (c *Coordinator) terminalFail(w *workerState, t *task, ls *lease, p ResultPayload) {
	c.mu.Lock()
	w.misses = 0
	if !c.resolveLeaseLocked(t, ls) || t.outcome != nil {
		c.rejectCompletionLocked(w, t, ls)
		return
	}
	w.h.observeOK() // the worker answered correctly; the input is what failed
	for _, sib := range siblings(t) {
		c.resolveLeaseLocked(t, sib)
		sib.cancel()
	}
	c.dequeueLocked(t)
	t.owner = ""
	t.outcome = &Outcome{
		Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusFailed,
		Err: p.Err, Diagnostics: p.Diagnostics, Attempts: t.attempts,
		Worker: w.addr, Epoch: ls.epoch,
	}
	c.stats.Failed++
	c.mUnitsDone.Inc()
	w.done++
	c.pending--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.journalTerminal(t)
}

// transientAnalysisFail requeues after a worker-reported transient failure
// (panic, budget blowout, injected fault), with full-jitter backoff.
func (c *Coordinator) transientAnalysisFail(w *workerState, t *task, ls *lease, err error) {
	c.mu.Lock()
	w.misses = 0
	if c.resolveLeaseLocked(t, ls) {
		w.h.observeError()
		c.requeueIfUnheldLocked(w, t, err)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// integrityFail handles a completion whose end-to-end content checksum did
// not match its bytes: the result is discarded, the unit requeued with its
// attempt refunded (the unit is innocent — the worker corrupted it), and
// the worker evicted once its integrity failures reach IntegrityLimit. A
// worker that lies about results is worse than one that crashes: nothing
// downstream can tell good bytes from bad, so the response is quarantine-
// the-worker, never trust-and-merge.
func (c *Coordinator) integrityFail(w *workerState, t *task, ls *lease, want, got string) {
	c.mu.Lock()
	if !c.resolveLeaseLocked(t, ls) {
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	w.h.observeError()
	w.integrityFails++
	c.stats.IntegrityFailures++
	c.mIntegrity.Inc()
	if !ls.hedge {
		t.attempts--
	}
	evict := w.live && w.integrityFails >= int64(c.opts.IntegrityLimit)
	c.requeueIfUnheldLocked(w, t, fmt.Errorf("content checksum mismatch: want %s, got %s", want, got))
	if evict {
		c.evictLocked(w, fmt.Errorf("%d integrity failure(s)", w.integrityFails))
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.logf("cluster: integrity failure on %s from %s (checksum want %s, got %s), result discarded",
		t.unit.Name, w.addr, want, got)
}

// requeueIfUnheldLocked returns a failed task to the pending queue — but
// only when nothing else holds it: no outcome, no outstanding lease (a
// hedge may still be racing), not already queued. Quarantines when its
// attempts are spent.
func (c *Coordinator) requeueIfUnheldLocked(w *workerState, t *task, err error) {
	if t.outcome != nil || len(t.leases) > 0 || c.isQueuedLocked(t) {
		return
	}
	if t.attempts >= c.opts.Retries+1 {
		t.owner = ""
		t.outcome = &Outcome{
			Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusQuarantined,
			Err: err.Error(), Attempts: t.attempts, Worker: w.addr,
		}
		c.stats.Quarantined++
		c.mUnitsDone.Inc()
		c.pending--
		c.journalTerminalAsync(t) // callers hold c.mu; Append must not
		return
	}
	t.owner = ""
	t.notBefore = time.Now().Add(backoff.Delay(c.opts.RetryBackoff, t.attempts))
	c.stats.Requeues++
	c.mRequeues.Inc()
	w.requeues++
	c.enqueueLocked(t, w.addr)
}

// journalTerminalAsync records a terminal outcome from a caller holding
// c.mu: the append runs in a wg-tracked goroutine so Run's shutdown waits
// for it before closing the journal.
func (c *Coordinator) journalTerminalAsync(t *task) {
	if c.jr == nil {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.journalTerminal(t)
	}()
}

// journalTerminal durably records a terminal outcome.
func (c *Coordinator) journalTerminal(t *task) {
	if c.jr == nil {
		return
	}
	o := t.outcome
	rec := journal.Record{
		Unit: o.Unit, Hash: o.Hash, Status: o.Status, Attempt: o.Attempts,
		Err: o.Err, Degraded: o.Degraded, Warnings: o.Warnings,
		Report: o.Report, Paths: o.Paths, Diagnostics: o.Diagnostics,
		Worker: o.Worker, Epoch: o.Epoch,
	}
	if err := c.jr.Append(rec); err != nil {
		c.logf("cluster: journal %s: %v", o.Unit, err)
	}
}

// evictLocked removes a worker from rotation and requeues everything it
// held: queued units move to survivors immediately; in-flight leases are
// invalidated — NOT canceled — so the worker's late responses, if any,
// arrive against a closed fence and are rejected as stale instead of
// racing the re-dispatch. That is the zombie window, closed by epoch
// fencing rather than by hoping the connection dies first.
func (c *Coordinator) evictLocked(w *workerState, reason error) {
	if !w.live {
		return
	}
	w.live = false
	close(w.stop)
	c.ring.Remove(w.addr)
	c.stats.Evictions++
	c.mEvictions.Inc()
	c.gWorkersLive.Set(c.liveCountLocked())
	c.pushPeerMapLocked()
	requeued := 0
	// Queued units first.
	for _, t := range w.queue {
		t.queuedOn = ""
		c.enqueueLocked(t, w.addr)
		requeued++
	}
	w.queue = nil
	// Then in-flight leases.
	for _, t := range c.tasks {
		if t.outcome != nil {
			continue
		}
		touched := false
		for _, ls := range siblings(t) {
			if ls.worker == w.addr {
				c.resolveLeaseLocked(t, ls)
				touched = true
			}
		}
		if !touched || len(t.leases) > 0 || c.isQueuedLocked(t) {
			continue
		}
		if t.attempts >= c.opts.Retries+1 {
			t.owner = ""
			t.outcome = &Outcome{
				Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusQuarantined,
				Err:      fmt.Sprintf("worker %s evicted: %v", w.addr, reason),
				Attempts: t.attempts, Worker: w.addr,
			}
			c.stats.Quarantined++
			c.mUnitsDone.Inc()
			c.pending--
			c.journalTerminalAsync(t)
			continue
		}
		t.owner = ""
		c.stats.Requeues++
		c.mRequeues.Inc()
		w.requeues++
		c.enqueueLocked(t, w.addr)
		requeued++
	}
	c.cond.Broadcast()
	c.logf("cluster: evicted worker %s (%v), %d unit(s) requeued", w.addr, reason, requeued)
}

// heartbeatLoop probes one worker until it is evicted or the run ends.
func (c *Coordinator) heartbeatLoop(w *workerState) {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-c.runCtx.Done():
			return
		case <-tick.C:
		}
		ok := c.ping(w)
		c.mu.Lock()
		if !w.live {
			c.mu.Unlock()
			return
		}
		if ok {
			w.misses = 0
			w.lastBeat = time.Now()
		} else {
			w.misses++
			w.hbMisses++
			c.stats.HeartbeatMisses++
			c.mHBMisses.Inc()
			if w.misses >= c.opts.HeartbeatMisses {
				c.evictLocked(w, fmt.Errorf("%d consecutive heartbeat misses", w.misses))
				c.mu.Unlock()
				return
			}
		}
		c.mu.Unlock()
	}
}

// ping probes one worker's /v1/cluster/ping with a deadline of one
// heartbeat interval.
func (c *Coordinator) ping(w *workerState) bool {
	ctx, cancel := context.WithTimeout(c.runCtx, c.opts.HeartbeatInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+w.addr+"/v1/cluster/ping", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Stats returns a snapshot of the run's counters, including completion
// latency quantiles over the recent sample window.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.LatencyP50MS, s.LatencyP95MS, s.LatencyP99MS = c.latQuantilesLocked()
	return s
}

// Progress reports done vs total units.
func (c *Coordinator) Progress() (done, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tasks) - c.pending, len(c.tasks)
}

// WorkerTable returns the per-worker health rows for the status server,
// sorted by address.
func (c *Coordinator) WorkerTable() []WorkerHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerHealth, 0, len(c.workers))
	for _, addr := range sortedWorkerAddrs(c.workers) {
		w := c.workers[addr]
		age := int64(-1)
		if !w.lastBeat.IsZero() {
			age = now.Sub(w.lastBeat).Milliseconds()
		}
		out = append(out, WorkerHealth{
			Addr: w.addr, Live: w.live, State: w.h.state(w.live),
			Score:         float64(int(w.h.score*1000)) / 1000,
			LatencyEWMAMS: float64(int(w.h.latEWMA*10)) / 10,
			ErrorRate:     float64(int(w.h.errEWMA*1000)) / 1000,
			Queue:         len(w.queue), InFlight: w.inflight,
			Done: w.done, Requeues: w.requeues, HeartbeatMisses: w.hbMisses,
			IntegrityFails: w.integrityFails,
			LastBeatAgeMS:  age, Paused: now.Before(w.pausedUntil),
		})
	}
	return out
}

func sortedWorkerAddrs(m map[string]*workerState) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ { // insertion sort: tiny n
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// outcomeFromRecord replays a terminal journal record as an Outcome, so a
// resumed coordinator reproduces the original run's bytes exactly.
func outcomeFromRecord(t *task, rec journal.Record) *Outcome {
	return &Outcome{
		Unit: t.unit.Name, Hash: t.hash, Status: rec.Status,
		Report: rec.Report, Paths: rec.Paths, Diagnostics: rec.Diagnostics,
		Err: rec.Err, Attempts: 0, Skipped: true, Worker: rec.Worker,
		Degraded: rec.Degraded, Warnings: rec.Warnings,
	}
}

// WriteMergedPaths writes the cluster's merged path database: one JSON
// object mapping unit name → that unit's path database, unit names sorted
// (json.Marshal sorts map keys), values exactly the workers' bytes. The
// output is byte-identical at any worker count and under any crash
// schedule, because every value is deterministic and the map shape is
// completion-order-independent.
func WriteMergedPaths(outcomes []Outcome) ([]byte, error) {
	merged := make(map[string]json.RawMessage, len(outcomes))
	for _, o := range outcomes {
		if len(o.Paths) > 0 {
			merged[o.Unit] = o.Paths
		}
	}
	return json.MarshalIndent(merged, "", " ")
}
