package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pallas"
	"pallas/internal/guard"
	"pallas/internal/journal"
	"pallas/internal/metrics"
)

// Options configures a Coordinator. The zero value is usable: defaults are
// filled in by NewCoordinator.
type Options struct {
	// Client performs worker HTTP requests; nil means a fresh client.
	// Per-request deadlines come from RequestTimeout, not Client.Timeout.
	Client *http.Client
	// HeartbeatInterval is how often each worker is probed for liveness.
	// Default 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive failed probes (or failed unit
	// dispatches) evict a worker. Default 3.
	HeartbeatMisses int
	// RequestTimeout bounds one unit dispatch end to end — a worker that
	// hangs mid-analysis holds the unit at most this long before it counts
	// as a transient failure and the unit is requeued. Default 2m.
	RequestTimeout time.Duration
	// Inflight is how many units one worker analyzes concurrently (the
	// coordinator-side pipeline depth; the worker's own admission control
	// is the authority and sheds with 503 beyond its capacity). Default 2.
	Inflight int
	// Retries is how many re-dispatches a unit gets after its first attempt
	// fails transiently (worker death, hang, panic, budget blowout,
	// injected fault); past them the unit is quarantined — the same policy
	// AnalyzeBatch applies in-process. Default 2.
	Retries int
	// RetryBackoff is the base delay before a requeued unit is eligible for
	// re-dispatch, doubled per attempt with ±50% jitter (AnalyzeBatch's
	// curve). The unit waits in queue; no dispatcher sleeps. Default 100ms.
	RetryBackoff time.Duration
	// JournalPath, when set, records every assignment (non-terminal) and
	// completion (terminal, with report and pathdb bytes) in a checkpoint
	// journal, making the coordinator itself crash-recoverable.
	JournalPath string
	// Resume replays units whose latest journal record is terminal and
	// still matches their content hash instead of re-dispatching them.
	Resume bool
	// GroupCommit opens the journal with batched fsyncs.
	GroupCommit bool
	// WorkerlessGrace is how long the coordinator tolerates having zero
	// live workers while units are pending (covering supervisor restarts)
	// before failing the run. Default 15s.
	WorkerlessGrace time.Duration
	// Metrics receives the cluster instruments; nil means metrics.Default.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives progress lines (evictions, requeues,
	// duplicate completions) — the CLI points it at stderr.
	Logf func(format string, args ...any)
}

// Outcome is the terminal result of one unit, in input order. Either a
// replayed/completed analysis (Report/Paths set) or a failure (Err set).
type Outcome struct {
	// Unit and Hash identify the unit.
	Unit string
	Hash string
	// Status is the journal-status classification of the outcome.
	Status journal.Status
	// Report and Paths are the unit's marshaled report and path database —
	// byte-identical to a single-process analysis of the same unit.
	Report json.RawMessage
	Paths  json.RawMessage
	// Diagnostics carries the unit's degradation record.
	Diagnostics []guard.Diagnostic
	// Err is the failure rendered as text for failed/quarantined units.
	Err string
	// Attempts counts dispatch attempts this run (0 for replayed units).
	Attempts int
	// Skipped reports the unit was replayed from the journal on resume.
	Skipped bool
	// Worker is the worker that completed the unit (or was last assigned).
	Worker string
	// Degraded and Warnings mirror the report.
	Degraded bool
	Warnings int
	// CacheHit reports the completing worker served its cache.
	CacheHit bool
}

// Stats summarizes one cluster run.
type Stats struct {
	Units           int
	Completed       int
	Skipped         int
	Failed          int
	Quarantined     int
	Requeues        int
	Evictions       int
	HeartbeatMisses int
	DupCompletions  int
	Backpressure    int
	CacheHits       int
	// Journal recovery, as in BatchStats.
	JournalRecovered   int
	JournalTornTail    bool
	JournalQuarantined int
}

// WorkerHealth is one row of the coordinator's per-worker table
// (/healthz?verbose=1 on the status server).
type WorkerHealth struct {
	Addr            string `json:"addr"`
	Live            bool   `json:"live"`
	Queue           int    `json:"queue"`
	InFlight        int    `json:"in_flight"`
	Done            int64  `json:"done"`
	Requeues        int64  `json:"requeues"`
	HeartbeatMisses int64  `json:"heartbeat_misses"`
	LastBeatAgeMS   int64  `json:"last_beat_age_ms"`
	Paused          bool   `json:"paused"`
}

// task states.
const (
	taskPending = iota
	taskAssigned
	taskDone
)

type task struct {
	idx       int
	unit      pallas.Unit
	hash      string
	state     int
	attempts  int
	owner     string    // worker addr while assigned
	queuedOn  string    // worker addr whose queue holds it while pending
	notBefore time.Time // retry-backoff eligibility
	outcome   *Outcome
}

type workerState struct {
	addr        string
	live        bool
	queue       []*task
	inflight    int
	misses      int
	lastBeat    time.Time
	pausedUntil time.Time
	done        int64
	requeues    int64
	hbMisses    int64
	stop        chan struct{}
}

// Coordinator owns a cluster run: it shards units over workers, keeps them
// alive or evicts them, and merges results deterministically. Create with
// NewCoordinator, register workers with AddWorker (before or during Run),
// then call Run once.
type Coordinator struct {
	opts   Options
	client *http.Client
	reg    *metrics.Registry
	jr     *journal.Journal

	mu       sync.Mutex
	cond     *sync.Cond
	ring     *Ring
	workers  map[string]*workerState
	tasks    []*task
	orphans  []*task // pending tasks with no live worker to queue on
	pending  int
	running  bool
	closed   bool
	fatalErr error
	stats    Stats

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	gWorkersLive *metrics.Gauge
	mRequeues    *metrics.Counter
	mHBMisses    *metrics.Counter
	mEvictions   *metrics.Counter
	mDups        *metrics.Counter
	mUnitsDone   *metrics.Counter
	mBackpress   *metrics.Counter
}

// NewCoordinator builds a coordinator (opening the journal when configured).
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.HeartbeatMisses <= 0 {
		opts.HeartbeatMisses = 3
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 2 * time.Minute
	}
	if opts.Inflight <= 0 {
		opts.Inflight = 2
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	if opts.WorkerlessGrace <= 0 {
		opts.WorkerlessGrace = 15 * time.Second
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	c := &Coordinator{
		opts:    opts,
		client:  opts.Client,
		reg:     reg,
		ring:    NewRing(),
		workers: map[string]*workerState{},

		gWorkersLive: reg.Gauge(metrics.MetricClusterWorkersLive, "cluster workers currently live"),
		mRequeues:    reg.Counter(metrics.MetricClusterRequeues, "units requeued after worker failure or transient error"),
		mHBMisses:    reg.Counter(metrics.MetricClusterHeartbeatMisses, "missed worker heartbeats"),
		mEvictions:   reg.Counter(metrics.MetricClusterEvictions, "workers evicted"),
		mDups:        reg.Counter(metrics.MetricClusterDupCompletions, "duplicate completions suppressed by content hash"),
		mUnitsDone:   reg.Counter(metrics.MetricClusterUnitsDone, "units with a terminal outcome recorded"),
		mBackpress:   reg.Counter(metrics.MetricClusterBackpressure, "dispatches shed by worker overload control and requeued"),
	}
	c.cond = sync.NewCond(&c.mu)
	if opts.JournalPath != "" {
		jr, err := journal.OpenOptions(opts.JournalPath, journal.Options{GroupCommit: opts.GroupCommit})
		if err != nil {
			return nil, err
		}
		c.jr = jr
		rec := jr.Recovery()
		c.stats.JournalRecovered = rec.Records
		c.stats.JournalTornTail = rec.TornTail
		c.stats.JournalQuarantined = rec.Quarantined
	} else if opts.Resume {
		return nil, errors.New("cluster: Options.Resume requires JournalPath")
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// AddWorker registers a worker address and starts dispatching to it. Safe
// to call before or during Run (the supervisor calls it when a restarted
// worker comes up). Re-adding a live worker is a no-op.
func (c *Coordinator) AddWorker(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if w, ok := c.workers[addr]; ok && w.live {
		return
	}
	w := &workerState{addr: addr, live: true, lastBeat: time.Now(), stop: make(chan struct{})}
	c.workers[addr] = w
	c.ring.Add(addr)
	c.gWorkersLive.Set(c.liveCountLocked())
	// Re-home orphaned tasks now that a worker exists.
	for _, t := range c.orphans {
		t.queuedOn = addr
		w.queue = append(w.queue, t)
	}
	c.orphans = nil
	if c.running {
		c.startWorkerLocked(w)
	}
	c.cond.Broadcast()
}

// RemoveWorker evicts a worker (the supervisor calls it when a worker
// process dies before the heartbeat notices); its queued and in-flight
// units are requeued to the survivors.
func (c *Coordinator) RemoveWorker(addr string, reason error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok && w.live {
		c.evictLocked(w, reason)
	}
}

func (c *Coordinator) liveCountLocked() int64 {
	var n int64
	for _, w := range c.workers {
		if w.live {
			n++
		}
	}
	return n
}

// startWorkerLocked launches a worker's dispatcher and heartbeat loops.
func (c *Coordinator) startWorkerLocked(w *workerState) {
	for i := 0; i < c.opts.Inflight; i++ {
		c.wg.Add(1)
		go c.dispatchLoop(w)
	}
	c.wg.Add(1)
	go c.heartbeatLoop(w)
}

// Run dispatches units across the registered workers and blocks until every
// unit has a terminal outcome (or the run fails fatally: context canceled,
// or no live workers for longer than WorkerlessGrace). Outcomes are in
// input order regardless of which worker finished what, when — the
// determinism anchor for merged output. Run may be called once.
func (c *Coordinator) Run(ctx context.Context, units []pallas.Unit) ([]Outcome, Stats, error) {
	c.mu.Lock()
	if c.running || c.closed {
		c.mu.Unlock()
		return nil, c.stats, errors.New("cluster: Run called twice")
	}
	c.running = true
	c.runCtx, c.runCancel = context.WithCancel(ctx)
	c.stats.Units = len(units)

	c.tasks = make([]*task, len(units))
	for i, u := range units {
		t := &task{idx: i, unit: u, hash: u.Hash(), state: taskPending}
		c.tasks[i] = t
		if c.jr != nil && c.opts.Resume {
			if rec, ok := c.jr.Lookup(u.Name); ok && rec.Hash == t.hash && rec.Status.Terminal() {
				t.state = taskDone
				t.outcome = outcomeFromRecord(t, rec)
				c.stats.Skipped++
				continue
			}
		}
		c.pending++
		c.enqueueLocked(t, "")
	}
	for _, w := range c.workers {
		if w.live {
			c.startWorkerLocked(w)
		}
	}
	// Wake ticker: re-checks retry-backoff eligibility and worker pauses.
	c.wg.Add(1)
	go c.tick()
	// Watchdogs: context cancellation and worker famine.
	c.wg.Add(1)
	go c.watch()

	for c.pending > 0 && c.fatalErr == nil {
		c.cond.Wait()
	}
	err := c.fatalErr
	c.closed = true
	c.runCancel()
	for _, w := range c.workers {
		if w.live {
			close(w.stop)
			w.live = false
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jr != nil {
		c.jr.Flush()
		c.jr.Close()
	}
	out := make([]Outcome, len(c.tasks))
	for i, t := range c.tasks {
		if t.outcome != nil {
			out[i] = *t.outcome
		} else {
			out[i] = Outcome{Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusFailed,
				Err: "cluster: run aborted before completion", Attempts: t.attempts}
		}
	}
	if err != nil {
		return out, c.stats, fmt.Errorf("cluster: run failed: %w", err)
	}
	return out, c.stats, nil
}

// tick periodically wakes dispatchers so retry-backoff eligibility and
// backpressure pauses are re-evaluated without per-task timers.
func (c *Coordinator) tick() {
	defer c.wg.Done()
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.runCtx.Done():
			return
		case <-t.C:
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		}
	}
}

// watch fails the run when the context dies or no worker has been live for
// WorkerlessGrace while units are still pending.
func (c *Coordinator) watch() {
	defer c.wg.Done()
	var zeroSince time.Time
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.runCtx.Done():
			c.mu.Lock()
			if c.pending > 0 && c.fatalErr == nil && !c.closed {
				c.fatalErr = c.runCtx.Err()
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		case <-t.C:
			c.mu.Lock()
			if c.closed || c.pending == 0 {
				c.mu.Unlock()
				return
			}
			if c.liveCountLocked() == 0 {
				if zeroSince.IsZero() {
					zeroSince = time.Now()
				} else if time.Since(zeroSince) > c.opts.WorkerlessGrace {
					c.fatalErr = fmt.Errorf("no live workers for %s with %d unit(s) pending",
						c.opts.WorkerlessGrace, c.pending)
					c.cond.Broadcast()
					c.mu.Unlock()
					return
				}
			} else {
				zeroSince = time.Time{}
			}
			c.mu.Unlock()
		}
	}
}

// enqueueLocked queues a pending task on its ring owner (or the
// shortest-queued live worker when the owner is excluded/dead). exclude
// names a worker to avoid — the one that just failed the task.
func (c *Coordinator) enqueueLocked(t *task, exclude string) {
	target := ""
	if owner := c.ring.Owner(t.hash); owner != "" && owner != exclude {
		target = owner
	} else {
		best := -1
		for _, w := range c.workers {
			if !w.live || w.addr == exclude {
				continue
			}
			if best < 0 || len(w.queue) < best {
				best = len(w.queue)
				target = w.addr
			}
		}
	}
	if target == "" {
		// No live worker (or only the excluded one, which is being
		// evicted): park the task; AddWorker drains orphans.
		if exclude != "" {
			if w := c.workers[exclude]; w != nil && w.live {
				t.queuedOn = exclude
				w.queue = append(w.queue, t)
				return
			}
		}
		t.queuedOn = ""
		c.orphans = append(c.orphans, t)
		return
	}
	t.queuedOn = target
	c.workers[target].queue = append(c.workers[target].queue, t)
}

// dequeueLocked removes t from whatever queue holds it (used when a late
// completion for a requeued task arrives before its re-dispatch).
func (c *Coordinator) dequeueLocked(t *task) {
	if t.queuedOn != "" {
		if w := c.workers[t.queuedOn]; w != nil {
			for i, q := range w.queue {
				if q == t {
					w.queue = append(w.queue[:i], w.queue[i+1:]...)
					break
				}
			}
		}
		t.queuedOn = ""
		return
	}
	for i, q := range c.orphans {
		if q == t {
			c.orphans = append(c.orphans[:i], c.orphans[i+1:]...)
			return
		}
	}
}

// next blocks until the worker has a unit to run (own queue first, then
// stolen from the longest live queue), the worker dies, or the run ends.
// Returns nil when the dispatcher should exit.
func (c *Coordinator) next(w *workerState) *task {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed || !w.live || c.fatalErr != nil {
			return nil
		}
		now := time.Now()
		if now.After(w.pausedUntil) {
			if t := c.popEligibleLocked(w, now); t != nil {
				c.assignLocked(t, w)
				return t
			}
			if t := c.stealLocked(w, now); t != nil {
				c.assignLocked(t, w)
				return t
			}
		}
		c.cond.Wait()
	}
}

// popEligibleLocked removes the first task in w's queue whose retry backoff
// has elapsed.
func (c *Coordinator) popEligibleLocked(w *workerState, now time.Time) *task {
	for i, t := range w.queue {
		if t.notBefore.After(now) {
			continue
		}
		w.queue = append(w.queue[:i], w.queue[i+1:]...)
		t.queuedOn = ""
		return t
	}
	return nil
}

// stealLocked takes an eligible task from the tail of the longest live
// queue — the classic work-stealing choice: the tail is the work its owner
// would reach last, so stealing it disturbs cache locality least.
func (c *Coordinator) stealLocked(w *workerState, now time.Time) *task {
	var victim *workerState
	for _, u := range c.workers {
		if u == w || !u.live || len(u.queue) == 0 {
			continue
		}
		if victim == nil || len(u.queue) > len(victim.queue) {
			victim = u
		}
	}
	if victim == nil {
		return nil
	}
	for i := len(victim.queue) - 1; i >= 0; i-- {
		t := victim.queue[i]
		if t.notBefore.After(now) {
			continue
		}
		victim.queue = append(victim.queue[:i], victim.queue[i+1:]...)
		t.queuedOn = ""
		return t
	}
	return nil
}

func (c *Coordinator) assignLocked(t *task, w *workerState) {
	t.state = taskAssigned
	t.owner = w.addr
	t.attempts++
	w.inflight++
}

// dispatchLoop is one dispatcher lane of one worker: take the next unit,
// send it, classify the outcome. A worker has Options.Inflight lanes.
func (c *Coordinator) dispatchLoop(w *workerState) {
	defer c.wg.Done()
	for {
		t := c.next(w)
		if t == nil {
			return
		}
		c.journalAssign(t, w)
		payload, shed, retryAfter, err := c.send(t, w)
		switch {
		case err != nil:
			c.transportFail(w, t, err)
		case shed:
			c.backpressured(w, t, retryAfter)
		default:
			c.finishResult(w, t, payload)
		}
	}
}

func (c *Coordinator) journalAssign(t *task, w *workerState) {
	if c.jr == nil {
		return
	}
	if err := c.jr.Append(journal.Record{
		Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusAssigned,
		Attempt: t.attempts, Worker: w.addr,
	}); err != nil {
		c.logf("cluster: journal assign %s: %v", t.unit.Name, err)
	}
}

// send performs one framed dispatch. Returns the decoded result, or
// shed=true with the worker's Retry-After hint, or a transport error.
func (c *Coordinator) send(t *task, w *workerState) (ResultPayload, bool, time.Duration, error) {
	var zero ResultPayload
	body, err := EncodeFrame(FrameAssign, AssignPayload{
		Unit: t.unit.Name, Hash: t.hash, Source: t.unit.Source, Spec: t.unit.Spec,
		Attempt: t.attempts,
	})
	if err != nil {
		return zero, false, 0, err
	}
	ctx, cancel := context.WithTimeout(c.runCtx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+w.addr+"/v1/cluster/unit", bytes.NewReader(body))
	if err != nil {
		return zero, false, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return zero, false, 0, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var payload ResultPayload
		if err := DecodeFrame(resp.Body, FrameResult, &payload); err != nil {
			return zero, false, 0, err
		}
		if payload.Hash != t.hash {
			return zero, false, 0, fmt.Errorf("result hash mismatch: got %s, want %s",
				payload.Hash, t.hash)
		}
		return payload, false, 0, nil
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
		retry := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		return zero, true, retry, nil
	default:
		return zero, false, 0, fmt.Errorf("worker %s: status %d", w.addr, resp.StatusCode)
	}
}

// transportFail handles a dispatch that never produced a result: the worker
// died, hung past RequestTimeout, or answered garbage. The unit is requeued
// (bounded), and the miss counts toward the worker's eviction threshold —
// a crashed worker is usually detected here first, before the heartbeat.
func (c *Coordinator) transportFail(w *workerState, t *task, err error) {
	c.mu.Lock()
	w.inflight--
	w.misses++
	c.stats.HeartbeatMisses++
	w.hbMisses++
	c.mHBMisses.Inc()
	evict := w.live && w.misses >= c.opts.HeartbeatMisses
	c.requeueLocked(w, t, err)
	if evict {
		c.evictLocked(w, fmt.Errorf("dispatch failures: %w", err))
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.logf("cluster: %s on %s failed (%v), requeued", t.unit.Name, w.addr, err)
}

// backpressured handles a 503/429 shed: the unit goes back to the queue
// without spending an attempt, and the worker is paused for the hint.
func (c *Coordinator) backpressured(w *workerState, t *task, retryAfter time.Duration) {
	if retryAfter > 2*time.Second {
		retryAfter = 2 * time.Second
	}
	c.mu.Lock()
	w.inflight--
	if t.state == taskAssigned && t.owner == w.addr {
		t.attempts-- // admission was refused; the analysis never started
		t.state = taskPending
		t.owner = ""
		w.pausedUntil = time.Now().Add(retryAfter)
		c.stats.Backpressure++
		c.mBackpress.Inc()
		c.enqueueLocked(t, "")
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finishResult classifies a decoded worker result.
func (c *Coordinator) finishResult(w *workerState, t *task, p ResultPayload) {
	switch p.Status {
	case "ok", "degraded":
		c.complete(w, t, p)
	case "failed":
		if p.Transient {
			c.transientAnalysisFail(w, t, errors.New(p.Err))
		} else {
			c.terminalFail(w, t, p)
		}
	default:
		c.transportFail(w, t, fmt.Errorf("worker %s: unknown result status %q", w.addr, p.Status))
	}
}

// complete records a successful analysis — exactly once per unit content.
// A requeued unit that completes on two workers (the assignments echo the
// same content hash) is recorded on the first completion; the second
// increments the duplicate counter and is dropped, safe because worker
// output is deterministic: both completions carry the same bytes.
func (c *Coordinator) complete(w *workerState, t *task, p ResultPayload) {
	c.mu.Lock()
	w.inflight--
	w.misses = 0
	if t.outcome != nil {
		c.stats.DupCompletions++
		c.mDups.Inc()
		c.cond.Broadcast()
		c.mu.Unlock()
		c.logf("cluster: duplicate completion of %s (hash %.12s) from %s suppressed",
			t.unit.Name, t.hash, w.addr)
		return
	}
	if t.state == taskPending {
		// A late completion raced its own requeue: pull it back out of the
		// queue so no third attempt dispatches.
		c.dequeueLocked(t)
	}
	t.state = taskDone
	t.owner = ""
	status := journal.StatusOK
	if p.Status == "degraded" {
		status = journal.StatusDegraded
	}
	t.outcome = &Outcome{
		Unit: t.unit.Name, Hash: t.hash, Status: status,
		Report: p.Report, Paths: p.Paths, Diagnostics: p.Diagnostics,
		Attempts: t.attempts, Worker: w.addr,
		Degraded: p.Degraded, Warnings: p.Warnings, CacheHit: p.Cache == "hit",
	}
	if p.Cache == "hit" {
		c.stats.CacheHits++
	}
	c.stats.Completed++
	c.mUnitsDone.Inc()
	w.done++
	c.pending--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.journalTerminal(t)
}

// terminalFail records a deterministic analysis failure (no retry: the
// input itself is bad, as in AnalyzeBatch).
func (c *Coordinator) terminalFail(w *workerState, t *task, p ResultPayload) {
	c.mu.Lock()
	w.inflight--
	w.misses = 0
	if t.outcome != nil {
		c.stats.DupCompletions++
		c.mDups.Inc()
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	if t.state == taskPending {
		c.dequeueLocked(t)
	}
	t.state = taskDone
	t.owner = ""
	t.outcome = &Outcome{
		Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusFailed,
		Err: p.Err, Diagnostics: p.Diagnostics, Attempts: t.attempts, Worker: w.addr,
	}
	c.stats.Failed++
	c.mUnitsDone.Inc()
	w.done++
	c.pending--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.journalTerminal(t)
}

// transientAnalysisFail requeues after a worker-reported transient failure
// (panic, budget blowout, injected fault), with AnalyzeBatch's backoff.
func (c *Coordinator) transientAnalysisFail(w *workerState, t *task, err error) {
	c.mu.Lock()
	w.inflight--
	w.misses = 0
	c.requeueLocked(w, t, err)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// requeueLocked returns a failed assignment to the pending queue, or
// quarantines it when its attempts are spent. No-op when the task was
// already completed elsewhere (late failure after duplicate dispatch) or
// already requeued by an eviction sweep.
func (c *Coordinator) requeueLocked(w *workerState, t *task, err error) {
	if t.state != taskAssigned || t.owner != w.addr {
		return
	}
	if t.attempts >= c.opts.Retries+1 {
		t.state = taskDone
		t.owner = ""
		t.outcome = &Outcome{
			Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusQuarantined,
			Err: err.Error(), Attempts: t.attempts, Worker: w.addr,
		}
		c.stats.Quarantined++
		c.mUnitsDone.Inc()
		c.pending--
		c.journalTerminalAsync(t) // callers hold c.mu; Append must not
		return
	}
	t.state = taskPending
	t.owner = ""
	t.notBefore = time.Now().Add(retryDelay(c.opts.RetryBackoff, t.attempts))
	c.stats.Requeues++
	c.mRequeues.Inc()
	w.requeues++
	c.enqueueLocked(t, w.addr)
}

// retryDelay mirrors AnalyzeBatch's curve: base doubled per attempt (capped
// at 30s) with ±50% jitter.
func retryDelay(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// journalTerminalAsync records a terminal outcome from a caller holding
// c.mu: the append runs in a wg-tracked goroutine so Run's shutdown waits
// for it before closing the journal.
func (c *Coordinator) journalTerminalAsync(t *task) {
	if c.jr == nil {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.journalTerminal(t)
	}()
}

// journalTerminal durably records a terminal outcome.
func (c *Coordinator) journalTerminal(t *task) {
	if c.jr == nil {
		return
	}
	o := t.outcome
	rec := journal.Record{
		Unit: o.Unit, Hash: o.Hash, Status: o.Status, Attempt: o.Attempts,
		Err: o.Err, Degraded: o.Degraded, Warnings: o.Warnings,
		Report: o.Report, Paths: o.Paths, Diagnostics: o.Diagnostics,
		Worker: o.Worker,
	}
	if err := c.jr.Append(rec); err != nil {
		c.logf("cluster: journal %s: %v", o.Unit, err)
	}
}

// evictLocked removes a worker from rotation and requeues everything it
// held: queued units move to survivors immediately; in-flight units flip
// back to pending so their eventual transport error (or late success) is
// recognized as stale.
func (c *Coordinator) evictLocked(w *workerState, reason error) {
	if !w.live {
		return
	}
	w.live = false
	close(w.stop)
	c.ring.Remove(w.addr)
	c.stats.Evictions++
	c.mEvictions.Inc()
	c.gWorkersLive.Set(c.liveCountLocked())
	requeued := 0
	// Queued units first.
	for _, t := range w.queue {
		t.queuedOn = ""
		c.enqueueLocked(t, w.addr)
		requeued++
	}
	w.queue = nil
	// Then in-flight assignments.
	for _, t := range c.tasks {
		if t.state != taskAssigned || t.owner != w.addr {
			continue
		}
		if t.attempts >= c.opts.Retries+1 {
			t.state = taskDone
			t.owner = ""
			t.outcome = &Outcome{
				Unit: t.unit.Name, Hash: t.hash, Status: journal.StatusQuarantined,
				Err:      fmt.Sprintf("worker %s evicted: %v", w.addr, reason),
				Attempts: t.attempts, Worker: w.addr,
			}
			c.stats.Quarantined++
			c.mUnitsDone.Inc()
			c.pending--
			c.journalTerminalAsync(t)
			continue
		}
		t.state = taskPending
		t.owner = ""
		c.stats.Requeues++
		c.mRequeues.Inc()
		w.requeues++
		c.enqueueLocked(t, w.addr)
		requeued++
	}
	c.cond.Broadcast()
	c.logf("cluster: evicted worker %s (%v), %d unit(s) requeued", w.addr, reason, requeued)
}

// heartbeatLoop probes one worker until it is evicted or the run ends.
func (c *Coordinator) heartbeatLoop(w *workerState) {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-c.runCtx.Done():
			return
		case <-tick.C:
		}
		ok := c.ping(w)
		c.mu.Lock()
		if !w.live {
			c.mu.Unlock()
			return
		}
		if ok {
			w.misses = 0
			w.lastBeat = time.Now()
		} else {
			w.misses++
			w.hbMisses++
			c.stats.HeartbeatMisses++
			c.mHBMisses.Inc()
			if w.misses >= c.opts.HeartbeatMisses {
				c.evictLocked(w, fmt.Errorf("%d consecutive heartbeat misses", w.misses))
				c.mu.Unlock()
				return
			}
		}
		c.mu.Unlock()
	}
}

// ping probes one worker's /v1/cluster/ping with a deadline of one
// heartbeat interval.
func (c *Coordinator) ping(w *workerState) bool {
	ctx, cancel := context.WithTimeout(c.runCtx, c.opts.HeartbeatInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+w.addr+"/v1/cluster/ping", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Stats returns a snapshot of the run's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Progress reports done vs total units.
func (c *Coordinator) Progress() (done, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tasks) - c.pending, len(c.tasks)
}

// WorkerTable returns the per-worker health rows for the status server,
// sorted by address.
func (c *Coordinator) WorkerTable() []WorkerHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerHealth, 0, len(c.workers))
	for _, addr := range sortedWorkerAddrs(c.workers) {
		w := c.workers[addr]
		age := int64(-1)
		if !w.lastBeat.IsZero() {
			age = now.Sub(w.lastBeat).Milliseconds()
		}
		out = append(out, WorkerHealth{
			Addr: w.addr, Live: w.live, Queue: len(w.queue), InFlight: w.inflight,
			Done: w.done, Requeues: w.requeues, HeartbeatMisses: w.hbMisses,
			LastBeatAgeMS: age, Paused: now.Before(w.pausedUntil),
		})
	}
	return out
}

func sortedWorkerAddrs(m map[string]*workerState) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ { // insertion sort: tiny n
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// outcomeFromRecord replays a terminal journal record as an Outcome, so a
// resumed coordinator reproduces the original run's bytes exactly.
func outcomeFromRecord(t *task, rec journal.Record) *Outcome {
	return &Outcome{
		Unit: t.unit.Name, Hash: t.hash, Status: rec.Status,
		Report: rec.Report, Paths: rec.Paths, Diagnostics: rec.Diagnostics,
		Err: rec.Err, Attempts: 0, Skipped: true, Worker: rec.Worker,
		Degraded: rec.Degraded, Warnings: rec.Warnings,
	}
}

// WriteMergedPaths writes the cluster's merged path database: one JSON
// object mapping unit name → that unit's path database, unit names sorted
// (json.Marshal sorts map keys), values exactly the workers' bytes. The
// output is byte-identical at any worker count and under any crash
// schedule, because every value is deterministic and the map shape is
// completion-order-independent.
func WriteMergedPaths(outcomes []Outcome) ([]byte, error) {
	merged := make(map[string]json.RawMessage, len(outcomes))
	for _, o := range outcomes {
		if len(o.Paths) > 0 {
			merged[o.Unit] = o.Paths
		}
	}
	return json.MarshalIndent(merged, "", " ")
}
