package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHealthScoreProbationHysteresis drives the composite score directly:
// a worker 10x slower than the fleet's best drops below the demote bound
// and lands on probation; recovering to near-parity crosses the promote
// bound and rejoins. The gap between the two bounds is what keeps a
// borderline worker from flapping.
func TestHealthScoreProbationHysteresis(t *testing.T) {
	c, err := NewCoordinator(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	fast := &workerState{addr: "a:1", live: true, lastBeat: now}
	slow := &workerState{addr: "b:1", live: true, lastBeat: now}
	fast.h.latEWMA = 10
	slow.h.latEWMA = 100
	c.workers["a:1"] = fast
	c.workers["b:1"] = slow

	c.mu.Lock()
	c.updateHealthLocked(now)
	c.mu.Unlock()
	if fast.h.probation || fast.h.score < 0.99 {
		t.Fatalf("fast worker: score %.3f probation %v, want healthy at 1.0", fast.h.score, fast.h.probation)
	}
	if !slow.h.probation {
		t.Fatalf("slow worker not demoted: score %.3f", slow.h.score)
	}
	if slow.h.state(true) != "probation" || fast.h.state(true) != "healthy" {
		t.Fatalf("states: fast %q slow %q", fast.h.state(true), slow.h.state(true))
	}
	if c.hasHealthyLocked("a:1") {
		t.Fatal("hasHealthy excluding the only healthy worker must be false")
	}
	if !c.hasHealthyLocked("b:1") {
		t.Fatal("hasHealthy excluding the probation worker must be true")
	}
	if c.stats.Probations != 1 {
		t.Fatalf("probations counted: %d, want 1", c.stats.Probations)
	}

	// Partial recovery inside the hysteresis band: still on probation.
	slow.h.latEWMA = 18 // score ~0.56: above demote, below promote
	c.mu.Lock()
	c.updateHealthLocked(now)
	c.mu.Unlock()
	if !slow.h.probation {
		t.Fatalf("worker promoted inside the hysteresis band (score %.3f)", slow.h.score)
	}

	// Full recovery: promoted.
	slow.h.latEWMA = 12
	c.mu.Lock()
	c.updateHealthLocked(now)
	c.mu.Unlock()
	if slow.h.probation {
		t.Fatalf("worker not promoted after recovery (score %.3f)", slow.h.score)
	}

	// A silent worker decays through the heartbeat factor even with perfect
	// latency: no beat for the whole miss budget means score zero.
	slow.lastBeat = now.Add(-10 * c.opts.HeartbeatInterval)
	c.mu.Lock()
	c.updateHealthLocked(now)
	c.mu.Unlock()
	if slow.h.score > 0.01 {
		t.Fatalf("silent worker score %.3f, want ~0", slow.h.score)
	}
}

// TestHedgeThreshold pins the threshold rule: the HedgeAfter floor rules
// until enough samples exist, then p95 x 3 takes over when larger.
func TestHedgeThreshold(t *testing.T) {
	opts := testOpts()
	opts.HedgeAfter = time.Second
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if thr := c.hedgeThresholdLocked(); thr != time.Second {
		t.Fatalf("no samples: threshold %s, want the 1s floor", thr)
	}
	for i := 0; i < 16; i++ {
		c.observeLatencyLocked(10 * time.Millisecond)
	}
	if thr := c.hedgeThresholdLocked(); thr != time.Second {
		t.Fatalf("fast fleet: threshold %s, want the floor to clamp (p95x3 = 30ms)", thr)
	}
	for i := 0; i < 256; i++ {
		c.observeLatencyLocked(600 * time.Millisecond)
	}
	thr := c.hedgeThresholdLocked()
	if thr < 1700*time.Millisecond || thr > 1900*time.Millisecond {
		t.Fatalf("slow fleet: threshold %s, want ~1.8s (p95 600ms x 3)", thr)
	}
	p50, p95, p99 := c.latQuantilesLocked()
	if p50 != 600 || p95 != 600 || p99 != 600 {
		t.Fatalf("quantiles after uniform fill: %v %v %v, want 600", p50, p95, p99)
	}
}

// TestClusterHedgeRescuesSlowWorker is the tail-latency proof: one worker
// analyzes correctly but 100x too slowly — alive by every heartbeat,
// never evicted. Hedging re-dispatches its stuck units to the healthy
// worker, first completion wins, and the run finishes in hedge time, not
// straggler time.
func TestClusterHedgeRescuesSlowWorker(t *testing.T) {
	const slowDelay = 1200 * time.Millisecond
	slow := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		time.Sleep(slowDelay)
		return http.StatusOK, okResult(a, "")
	})
	fast := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	})
	opts := testOpts()
	opts.HedgeAfter = 100 * time.Millisecond
	opts.HedgeMax = 4
	units := mkUnits(6)
	start := time.Now()
	outcomes, stats, err := runCluster(t, opts, []*fakeWorker{slow, fast}, units)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("run: %v (stats %+v)", err, stats)
	}
	if stats.Completed != len(units) {
		t.Fatalf("completed %d/%d (stats %+v)", stats.Completed, len(units), stats)
	}
	if stats.Hedges == 0 || stats.HedgeWins == 0 {
		t.Fatalf("hedging never fired: %d hedges, %d wins (stats %+v)", stats.Hedges, stats.HedgeWins, stats)
	}
	// Without hedging the slow worker's share (~half of 6 units at 1.2s,
	// two lanes) holds the run past 1.8s; with it the fast worker absorbs
	// everything shortly after the 100ms threshold.
	if elapsed > slowDelay {
		t.Fatalf("run took %s — hedging did not rescue the straggler's units", elapsed)
	}
	for _, o := range outcomes {
		if o.Status.Terminal() && o.Err != "" {
			t.Fatalf("%s failed: %s", o.Unit, o.Err)
		}
	}
}

// TestClusterProbationDrainsLoad: a worker that fails its first dispatches
// transiently accumulates error EWMA, is demoted, and the fleet routes
// around it; the run still completes with every unit on the healthy
// worker or on the probe trickle — and the worker table reports the
// demotion.
func TestClusterProbationDrainsLoad(t *testing.T) {
	opts := testOpts()
	opts.Retries = 5 // transient failures burn attempts; give them room
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	fails := 0
	flaky := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		mu.Lock()
		fails++
		n := fails
		mu.Unlock()
		if n <= 3 {
			return http.StatusOK, ResultPayload{
				Unit: a.Unit, Hash: a.Hash, Attempt: a.Attempt, Status: "failed",
				Err: "injected transient", Transient: true, Epoch: a.Epoch,
			}
		}
		// Withhold every success until the demotion lands: a success would
		// decay the error EWMA, and on a fast host the whole run can finish
		// between two 25ms health ticks — the tick must get one look at the
		// degraded score while it is still degraded.
		deadline := time.Now().Add(10 * time.Second)
		for c.Stats().Probations == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		return http.StatusOK, okResult(a, "")
	})
	steady := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	})
	c.AddWorker(flaky.addr())
	c.AddWorker(steady.addr())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	outcomes, stats, err := c.Run(ctx, mkUnits(8))
	if err != nil {
		t.Fatalf("run: %v (stats %+v)", err, stats)
	}
	if stats.Completed != 8 || stats.Quarantined != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Probations == 0 {
		t.Fatalf("flaky worker never demoted (stats %+v)", stats)
	}
	var sawFlaky bool
	for _, row := range c.WorkerTable() {
		if row.Addr == flaky.addr() {
			sawFlaky = true
			if row.ErrorRate == 0 {
				t.Fatalf("flaky worker table row shows no error rate: %+v", row)
			}
		}
		if row.State != "healthy" && row.State != "probation" && row.State != "evicted" {
			t.Fatalf("row %s has unknown state %q", row.Addr, row.State)
		}
	}
	if !sawFlaky {
		t.Fatal("worker table missing the flaky worker")
	}
	_ = outcomes
}

// TestStatusHandlerVerboseWorkerTable pins the observability contract that
// PROTOCOL.md documents: /healthz?verbose=1 carries the run counters
// (hedges, stale completions, integrity failures, probations, latency
// quantiles) and a per-worker table with the health columns; /metrics
// exposes the gray-failure series.
func TestStatusHandlerVerboseWorkerTable(t *testing.T) {
	opts := testOpts()
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	healthy := &workerState{addr: "a:1", live: true, lastBeat: now}
	healthy.h.latEWMA = 10
	grayed := &workerState{addr: "b:1", live: true, lastBeat: now}
	grayed.h.latEWMA = 100
	c.workers["a:1"] = healthy
	c.workers["b:1"] = grayed
	c.mu.Lock()
	c.updateHealthLocked(now)
	c.mu.Unlock()

	ts := httptest.NewServer(StatusHandler(c, opts.Metrics))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status  string `json:"status"`
		Stats   Stats  `json:"stats"`
		Workers []struct {
			Addr      string  `json:"addr"`
			State     string  `json:"state"`
			Score     float64 `json:"score"`
			ErrorRate float64 `json:"error_rate"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || len(body.Workers) != 2 {
		t.Fatalf("verbose healthz: %+v", body)
	}
	if body.Stats.Probations != 1 {
		t.Fatalf("stats.Probations = %d, want 1 (the run counters must ride verbose healthz)", body.Stats.Probations)
	}
	states := map[string]string{}
	for _, w := range body.Workers {
		states[w.Addr] = w.State
		if w.Score < 0 || w.Score > 1 {
			t.Fatalf("worker %s score %v outside [0,1]", w.Addr, w.Score)
		}
	}
	if states["a:1"] != "healthy" || states["b:1"] != "probation" {
		t.Fatalf("worker states: %v", states)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	for _, name := range []string{
		"pallas_cluster_hedges_total",
		"pallas_cluster_stale_completions_total",
		"pallas_cluster_integrity_failures_total",
		"pallas_cluster_worker_probations_total",
		"pallas_cluster_workers_probation",
		"pallas_cluster_worker_health_min_x1000",
	} {
		if !strings.Contains(string(raw), name) {
			t.Fatalf("metric %s missing from /metrics exposition", name)
		}
	}
}
