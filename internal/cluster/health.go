package cluster

// Worker health scoring: the gray-failure defense. Binary liveness (the
// heartbeat) only catches workers that are *gone*; a worker that is 20x
// slow, fails every third unit, or answers heartbeats while its analyses
// rot stalls a run without ever tripping eviction. Each worker therefore
// carries a composite health score in [0, 1] — latency EWMA relative to the
// fleet's best, a decayed error rate, and heartbeat age — recomputed every
// scheduler tick. The score biases placement (enqueue prefers healthy
// workers), gates work stealing (only healthy workers steal), and selects
// hedge targets, so load drains away from a degrading worker *before* the
// heartbeat would evict it. Crossing healthDemote puts a worker on
// probation — one in-flight probe unit at a time, no stealing — and it must
// recover past healthPromote to rejoin, the hysteresis gap preventing a
// borderline worker from flapping in and out of rotation.

import (
	"sort"
	"time"
)

const (
	// healthLatAlpha smooths per-unit latency: one sample moves the EWMA 30%
	// of the way — responsive to a worker going slow within a few units,
	// stable against one outlier.
	healthLatAlpha = 0.3
	// healthErrAlpha moves the decayed error rate: an error lifts it 30% of
	// the way to 1, a success decays it by the same factor.
	healthErrAlpha = 0.3
	// healthDemote and healthPromote are the probation hysteresis bounds.
	healthDemote  = 0.5
	healthPromote = 0.75
)

// health is one worker's gray-failure signal state, guarded by the
// coordinator's mutex like the rest of workerState.
type health struct {
	latEWMA   float64 // smoothed per-unit completion latency, ms; 0 = no samples
	errEWMA   float64 // decayed error rate in [0, 1]
	score     float64 // last composite score in [0, 1]
	probation bool
}

func (h *health) observeLatency(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	if h.latEWMA == 0 {
		h.latEWMA = ms
	} else {
		h.latEWMA = (1-healthLatAlpha)*h.latEWMA + healthLatAlpha*ms
	}
}

func (h *health) observeOK() {
	h.errEWMA *= 1 - healthErrAlpha
}

func (h *health) observeError() {
	h.errEWMA = (1-healthErrAlpha)*h.errEWMA + healthErrAlpha
}

// state renders the worker's dispatch state for the health table.
func (h *health) state(live bool) string {
	switch {
	case !live:
		return "evicted"
	case h.probation:
		return "probation"
	default:
		return "healthy"
	}
}

// updateHealthLocked recomputes every live worker's composite score and
// applies the probation hysteresis. Called from the scheduler tick under
// c.mu.
func (c *Coordinator) updateHealthLocked(now time.Time) {
	// The latency component is relative: the fastest live worker anchors
	// 1.0, a worker k× slower scores 1/k. Relative scoring keeps a uniformly
	// slow corpus from demoting the whole fleet.
	best := 0.0
	for _, w := range c.workers {
		if w.live && w.h.latEWMA > 0 && (best == 0 || w.h.latEWMA < best) {
			best = w.h.latEWMA
		}
	}
	minScore := 1.0
	var onProbation int64
	for _, w := range c.workers {
		if !w.live {
			continue
		}
		lat := 1.0
		if best > 0 && w.h.latEWMA > 0 {
			lat = best / w.h.latEWMA
		}
		hb := 1.0
		if !w.lastBeat.IsZero() {
			// Full credit within two heartbeat intervals (a beat may simply
			// not be due yet), then linear decay to zero over the miss
			// budget — the score hits bottom as eviction closes in.
			if age := now.Sub(w.lastBeat); age > 2*c.opts.HeartbeatInterval {
				over := age - 2*c.opts.HeartbeatInterval
				window := time.Duration(c.opts.HeartbeatMisses) * c.opts.HeartbeatInterval
				hb -= float64(over) / float64(window)
				if hb < 0 {
					hb = 0
				}
			}
		}
		s := lat * (1 - w.h.errEWMA) * hb
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
		w.h.score = s
		switch {
		case !w.h.probation && s < healthDemote:
			w.h.probation = true
			c.stats.Probations++
			c.mProbations.Inc()
			c.logf("cluster: worker %s demoted to probation (score %.2f: lat %.1fms, err %.2f, beat %.2f)",
				w.addr, s, w.h.latEWMA, w.h.errEWMA, hb)
		case w.h.probation && s >= healthPromote:
			w.h.probation = false
			c.logf("cluster: worker %s promoted from probation (score %.2f)", w.addr, s)
		}
		if w.h.probation {
			onProbation++
		}
		if s < minScore {
			minScore = s
		}
	}
	c.gHealthMin.Set(int64(minScore * 1000))
	c.gProbation.Set(onProbation)
}

// hasHealthyLocked reports whether any live worker other than exclude is
// off probation — the question every probation-avoidance path must ask
// before diverting work, so a fully degraded fleet still makes progress.
func (c *Coordinator) hasHealthyLocked(exclude string) bool {
	for _, w := range c.workers {
		if w.live && !w.h.probation && w.addr != exclude {
			return true
		}
	}
	return false
}

// latWindowSize bounds the completion-latency sample ring feeding the hedge
// threshold and the Stats quantiles.
const latWindowSize = 256

// observeLatencyLocked records one successful completion's latency in the
// run-wide sample ring.
func (c *Coordinator) observeLatencyLocked(d time.Duration) {
	c.latWin[c.latN%latWindowSize] = float64(d.Microseconds()) / 1000
	c.latN++
}

// latQuantilesLocked computes p50/p95/p99 (ms) over the sample window.
// Zeros until any completion has been observed.
func (c *Coordinator) latQuantilesLocked() (p50, p95, p99 float64) {
	n := c.latN
	if n > latWindowSize {
		n = latWindowSize
	}
	if n == 0 {
		return 0, 0, 0
	}
	samples := make([]float64, n)
	copy(samples, c.latWin[:n])
	sort.Float64s(samples)
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return samples[i]
	}
	return q(0.50), q(0.95), q(0.99)
}
