package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func mustEncode(t *testing.T, typ byte, v any) []byte {
	t.Helper()
	b, err := EncodeFrame(typ, v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	in := AssignPayload{Unit: "a.c", Hash: "h1", Source: "int f(void){return 0;}",
		Spec: "fastpath f\n", Attempt: 2}
	buf := mustEncode(t, FrameAssign, in)
	var out AssignPayload
	if err := DecodeFrame(bytes.NewReader(buf), FrameAssign, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestFrameResultRoundTrip(t *testing.T) {
	in := ResultPayload{Unit: "a.c", Hash: "h1", Attempt: 1, Status: "ok",
		Report: []byte(`{"warnings":[]}`), Paths: []byte(`{"entries":{}}`),
		Warnings: 0, Worker: "127.0.0.1:1"}
	buf := mustEncode(t, FrameResult, in)
	var out ResultPayload
	if err := DecodeFrame(bytes.NewReader(buf), FrameResult, &out); err != nil {
		t.Fatal(err)
	}
	if out.Unit != in.Unit || out.Status != in.Status ||
		string(out.Report) != string(in.Report) || string(out.Paths) != string(in.Paths) {
		t.Fatalf("round trip: got %+v", out)
	}
}

// TestFrameMalformed is the rejection table from the issue: truncated,
// oversized, and otherwise damaged frames must come back as typed errors —
// never a panic, never a wedge (ReadFrame always terminates: it reads at
// most header + declared length bytes).
func TestFrameMalformed(t *testing.T) {
	good := mustEncode(t, FrameAssign, AssignPayload{Unit: "a.c", Hash: "h", Source: "x"})

	corrupt := func(mutate func([]byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:7], ErrTruncated},
		{"truncated payload", good[:len(good)-3], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"unknown type", corrupt(func(b []byte) []byte { b[4] = 0x7f; return b }), ErrBadType},
		{"oversized length", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[5:9], MaxFramePayload+1)
			return b
		}), ErrOversized},
		{"length beyond body", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[5:9], uint32(len(b))) // claims more than present
			return b
		}), ErrTruncated},
		{"checksum mismatch", corrupt(func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}), ErrChecksum},
		{"garbage", []byte(strings.Repeat("PLSF", 8)), ErrBadType},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame(%q...) = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

func TestDecodeFrameWrongType(t *testing.T) {
	buf := mustEncode(t, FrameAssign, AssignPayload{Unit: "a.c", Hash: "h", Source: "x"})
	var out ResultPayload
	if err := DecodeFrame(bytes.NewReader(buf), FrameResult, &out); !errors.Is(err, ErrBadType) {
		t.Fatalf("wrong-type decode = %v, want ErrBadType", err)
	}
}

func TestDecodeFramePayloadNotJSONForTarget(t *testing.T) {
	// A frame whose payload is valid JSON but not the target shape decodes
	// with an error, not a panic.
	buf := mustEncode(t, FrameAssign, []int{1, 2, 3})
	var out AssignPayload
	if err := DecodeFrame(bytes.NewReader(buf), FrameAssign, &out); err == nil {
		t.Fatal("mismatched payload decoded without error")
	}
}

func TestEncodeFrameRejectsOversized(t *testing.T) {
	big := ResultPayload{Unit: "a.c", Report: bytes.Repeat([]byte("1"), MaxFramePayload+1)}
	if _, err := EncodeFrame(FrameResult, big); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized encode = %v, want ErrOversized", err)
	}
}

// FuzzClusterFrame hammers the decoder with arbitrary bytes: it must never
// panic, and any accepted frame must re-encode to semantically identical
// payload bytes.
func FuzzClusterFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PLSF"))
	good, _ := EncodeFrame(FrameAssign, AssignPayload{Unit: "a.c", Hash: "h", Source: "int f;"})
	f.Add(good)
	res, _ := EncodeFrame(FrameResult, ResultPayload{Unit: "a.c", Status: "ok", Report: []byte(`{}`)})
	f.Add(res)
	f.Add(append(good[:9], good...))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted frames must round-trip: re-framing the payload yields
		// the same header + payload bytes as the accepted prefix.
		reencoded := make([]byte, frameHeaderLen+len(payload))
		copy(reencoded, frameMagic[:])
		reencoded[4] = typ
		binary.BigEndian.PutUint32(reencoded[5:9], uint32(len(payload)))
		binary.BigEndian.PutUint32(reencoded[9:13], binary.BigEndian.Uint32(data[9:13]))
		copy(reencoded[frameHeaderLen:], payload)
		if !bytes.Equal(reencoded, data[:frameHeaderLen+len(payload)]) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}

func TestPeerFrameRoundTrips(t *testing.T) {
	get := PeerGetPayload{Key: "k1", Space: "unit", Epoch: 7, From: "127.0.0.1:1"}
	var get2 PeerGetPayload
	if err := DecodeFrame(bytes.NewReader(mustEncode(t, FramePeerGet, get)), FramePeerGet, &get2); err != nil {
		t.Fatal(err)
	}
	if get2 != get {
		t.Fatalf("PeerGet round trip: got %+v, want %+v", get2, get)
	}

	ent := PeerEntryPayload{Key: "k1", Found: true, Entry: []byte(`{"key":"k1"}`), Epoch: 7}
	var ent2 PeerEntryPayload
	if err := DecodeFrame(bytes.NewReader(mustEncode(t, FramePeerEntry, ent)), FramePeerEntry, &ent2); err != nil {
		t.Fatal(err)
	}
	if ent2.Key != ent.Key || !ent2.Found || string(ent2.Entry) != string(ent.Entry) || ent2.Epoch != 7 {
		t.Fatalf("PeerEntry round trip: got %+v", ent2)
	}

	put := PeerPutPayload{Key: "k1", Space: "incr", Entry: []byte(`{"key":"k1"}`), Epoch: 9, From: "127.0.0.1:2"}
	var put2 PeerPutPayload
	if err := DecodeFrame(bytes.NewReader(mustEncode(t, FramePeerPut, put)), FramePeerPut, &put2); err != nil {
		t.Fatal(err)
	}
	if put2.Key != put.Key || put2.Space != put.Space || string(put2.Entry) != string(put.Entry) || put2.Epoch != 9 {
		t.Fatalf("PeerPut round trip: got %+v", put2)
	}
}

func TestPeerFrameTypesAreDistinct(t *testing.T) {
	// A peer-get frame must not decode as a peer-put (and so on): the type
	// byte, not the payload shape, is the authority.
	buf := mustEncode(t, FramePeerGet, PeerGetPayload{Key: "k"})
	var put PeerPutPayload
	if err := DecodeFrame(bytes.NewReader(buf), FramePeerPut, &put); !errors.Is(err, ErrBadType) {
		t.Fatalf("cross-type decode = %v, want ErrBadType", err)
	}
}
