package cluster

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"time"

	"pallas/internal/metrics"
)

// ListenPrefix is the line a worker process prints to stderr once its
// listener is bound; the supervisor parses the address after it. Workers
// bind :0 and this line is how the ephemeral port travels back.
const ListenPrefix = "pallas: worker listening on "

// SupervisorOptions configures NewSupervisor.
type SupervisorOptions struct {
	// Binary is the pallas executable to spawn workers from.
	Binary string
	// Args are the worker subcommand arguments (e.g. "worker", "-addr",
	// "127.0.0.1:0", cache flags...). Every slot uses the same args.
	Args []string
	// Env is the child environment for first starts; nil inherits the
	// parent's.
	Env []string
	// RestartEnv, when non-nil, replaces Env for restarted workers. The
	// chaos harness uses it to clear PALLAS_FAILPOINTS: the first incarnation
	// is armed to crash, its replacement must not inherit the bomb.
	RestartEnv []string
	// MaxRestarts bounds how many times one slot is restarted after its
	// process dies. Default 2; negative means never restart.
	MaxRestarts int
	// RestartDelay is the pause before a restart. Default 200ms.
	RestartDelay time.Duration
	// OnUp is called (off the supervisor goroutine) with a worker's address
	// once it is listening — the coordinator's AddWorker.
	OnUp func(addr string)
	// OnDown is called when a worker process exits, with the address it had
	// (empty if it died before binding) — the coordinator's RemoveWorker.
	OnDown func(addr string, err error)
	// OnExhausted is called once when a slot's restart budget is spent and
	// the supervisor gives up on it, with the final exit error. A fleet
	// whose every slot is exhausted will never come back; the CLI surfaces
	// this as a terminal condition instead of waiting out WorkerlessGrace
	// in silence.
	OnExhausted func(slot int, err error)
	// Stderr receives the workers' stderr output (after the listen line);
	// nil discards it.
	Stderr io.Writer
	// Metrics receives the restart counter; nil means metrics.Default.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives supervisor progress lines.
	Logf func(format string, args ...any)
}

// Supervisor spawns and babysits local worker processes: it parses each
// worker's bound address from its stderr, reports up/down transitions, and
// restarts crashed workers a bounded number of times. Start spawns the
// fleet; Stop kills it.
type Supervisor struct {
	opts SupervisorOptions
	reg  *metrics.Registry

	mu      sync.Mutex
	slots   []*workerSlot
	stopped bool
	wg      sync.WaitGroup

	mRestarts *metrics.Counter
}

type workerSlot struct {
	id int

	mu   sync.Mutex
	cmd  *exec.Cmd
	addr string
}

// NewSupervisor builds a supervisor; call Start to spawn workers.
func NewSupervisor(opts SupervisorOptions) *Supervisor {
	if opts.MaxRestarts == 0 {
		opts.MaxRestarts = 2
	}
	if opts.RestartDelay <= 0 {
		opts.RestartDelay = 200 * time.Millisecond
	}
	if opts.Stderr == nil {
		opts.Stderr = io.Discard
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	return &Supervisor{
		opts:      opts,
		reg:       reg,
		mRestarts: reg.Counter(metrics.MetricClusterWorkerRestarts, "worker processes restarted after a crash"),
	}
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Start spawns n worker slots. Each slot runs until its process has died
// MaxRestarts+1 times or Stop is called.
func (s *Supervisor) Start(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		slot := &workerSlot{id: len(s.slots)}
		s.slots = append(s.slots, slot)
		s.wg.Add(1)
		go s.runSlot(slot)
	}
}

// runSlot is one worker slot's lifecycle: spawn, report up, wait, report
// down, restart (bounded) with RestartEnv.
func (s *Supervisor) runSlot(slot *workerSlot) {
	defer s.wg.Done()
	for incarnation := 0; ; incarnation++ {
		if s.isStopped() {
			return
		}
		env := s.opts.Env
		if incarnation > 0 && s.opts.RestartEnv != nil {
			env = s.opts.RestartEnv
		}
		addr, waitErr := s.runWorkerOnce(slot, env)
		if s.opts.OnDown != nil && addr != "" {
			s.opts.OnDown(addr, waitErr)
		}
		if s.isStopped() {
			return
		}
		if incarnation >= s.opts.MaxRestarts || s.opts.MaxRestarts < 0 {
			s.logf("cluster: worker slot %d gave up after %d start(s): %v",
				slot.id, incarnation+1, waitErr)
			if s.opts.OnExhausted != nil {
				s.opts.OnExhausted(slot.id, waitErr)
			}
			return
		}
		s.mRestarts.Inc()
		s.logf("cluster: worker slot %d (%s) died (%v), restarting", slot.id, addr, waitErr)
		time.Sleep(s.opts.RestartDelay)
	}
}

// runWorkerOnce spawns one worker process and blocks until it exits,
// returning the address it bound ("" if it died first) and its exit error.
func (s *Supervisor) runWorkerOnce(slot *workerSlot, env []string) (string, error) {
	cmd := exec.Command(s.opts.Binary, s.opts.Args...)
	cmd.Env = env
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", err
	}
	if err := cmd.Start(); err != nil {
		return "", err
	}
	slot.mu.Lock()
	slot.cmd = cmd
	slot.addr = ""
	slot.mu.Unlock()

	// Scan stderr until the listen line, then forward the rest.
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			if !announced {
				if rest, ok := strings.CutPrefix(line, ListenPrefix); ok {
					announced = true
					addrCh <- strings.TrimSpace(rest)
					continue
				}
			}
			fmt.Fprintln(s.opts.Stderr, line)
		}
		if !announced {
			addrCh <- ""
		}
	}()

	addr := <-addrCh
	if addr != "" {
		slot.mu.Lock()
		slot.addr = addr
		slot.mu.Unlock()
		s.logf("cluster: worker slot %d up at %s", slot.id, addr)
		if s.opts.OnUp != nil {
			s.opts.OnUp(addr)
		}
	}
	// Drain stderr to EOF before reaping: Wait closes the pipe, and calling
	// it with reads outstanding can discard the process's final lines (the
	// exec package documents this ordering). The scanner reaches EOF when
	// the process exits or closes stderr, so this does not outlive Wait's
	// own blocking.
	<-scanDone
	waitErr := cmd.Wait()
	return addr, waitErr
}

func (s *Supervisor) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Kill SIGKILLs the worker currently bound to addr (the chaos harness's
// crowbar). Returns false if no live slot has that address.
func (s *Supervisor) Kill(addr string) bool {
	s.mu.Lock()
	slots := append([]*workerSlot(nil), s.slots...)
	s.mu.Unlock()
	for _, slot := range slots {
		slot.mu.Lock()
		cmd, a := slot.cmd, slot.addr
		slot.mu.Unlock()
		if a == addr && cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
			return true
		}
	}
	return false
}

// Stop kills every worker process and waits for the slot goroutines.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.stopped = true
	slots := append([]*workerSlot(nil), s.slots...)
	s.mu.Unlock()
	for _, slot := range slots {
		slot.mu.Lock()
		if slot.cmd != nil && slot.cmd.Process != nil {
			slot.cmd.Process.Kill()
		}
		slot.mu.Unlock()
	}
	s.wg.Wait()
}
