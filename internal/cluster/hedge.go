package cluster

// Hedged dispatch: the tail-latency defense. A unit stuck on a slow worker
// holds the whole run hostage — the heartbeat says the worker is alive, the
// request timeout is minutes away, and eviction never comes. When a unit's
// in-flight time exceeds a quantile-tracked threshold (p95 of observed
// completion latency × hedgeFactor, clamped below by Options.HedgeAfter),
// the scheduler speculatively re-dispatches it to the best healthy worker
// under a fresh lease epoch. First completion wins; the loser's lease is
// invalidated and its connection canceled, and its response — should it
// arrive anyway — is suppressed by the fence as a duplicate. Hedges do not
// consume retry attempts: a hedge is a bet against a slow worker, not a
// failure.

import (
	"time"
)

const (
	// hedgeFactor multiplies the observed p95 completion latency to form the
	// hedge threshold: only units at 3× the tail are worth paying a
	// duplicate analysis for.
	hedgeFactor = 3.0
	// hedgeMinSamples is how many completions must be observed before the
	// p95 is trusted; below it only the HedgeAfter floor applies.
	hedgeMinSamples = 8
	// maxHedgesPerTask bounds speculative re-dispatches of one unit, so a
	// unit that is slow *everywhere* (it is the unit, not the worker)
	// cannot eat the hedge budget alone.
	maxHedgesPerTask = 2
)

// hedgeThresholdLocked is the current in-flight age beyond which a unit is
// hedged: max(HedgeAfter, p95 × hedgeFactor).
func (c *Coordinator) hedgeThresholdLocked() time.Duration {
	thr := c.opts.HedgeAfter
	if c.latN >= hedgeMinSamples {
		_, p95, _ := c.latQuantilesLocked()
		if q := time.Duration(p95 * hedgeFactor * float64(time.Millisecond)); q > thr {
			thr = q
		}
	}
	return thr
}

// hedgeScanLocked walks the in-flight tasks and launches hedge dispatches
// for those past the threshold. Called from the scheduler tick under c.mu.
func (c *Coordinator) hedgeScanLocked(now time.Time) {
	if c.opts.HedgeAfter < 0 || c.opts.HedgeMax <= 0 || c.closed || c.hedgesOut >= c.opts.HedgeMax {
		return
	}
	thr := c.hedgeThresholdLocked()
	for _, t := range c.tasks {
		if c.hedgesOut >= c.opts.HedgeMax {
			return
		}
		// Exactly one outstanding lease, no outcome, hedge budget left: a
		// second lease would mean a hedge (or injected duplicate) is already
		// racing, and a resolved task needs nothing.
		if t.outcome != nil || len(t.leases) != 1 || t.hedges >= maxHedgesPerTask {
			continue
		}
		var ls *lease
		for _, l := range t.leases {
			ls = l
		}
		if ls.hedge || now.Sub(ls.start) < thr {
			continue
		}
		hw := c.hedgeTargetLocked(ls.worker)
		if hw == nil {
			continue
		}
		t.hedges++
		c.stats.Hedges++
		c.mHedges.Inc()
		nls := c.newLeaseLocked(t, hw, true)
		c.logf("cluster: hedging %s (in flight %dms on %s, threshold %s) to %s (epoch %d)",
			t.unit.Name, now.Sub(ls.start).Milliseconds(), ls.worker, thr, hw.addr, nls.epoch)
		c.wg.Add(1)
		go func(hw *workerState, t *task, nls *lease) {
			defer c.wg.Done()
			c.dispatchLease(hw, t, nls)
		}(hw, t, nls)
	}
}

// hedgeTargetLocked picks the hedge destination: the healthy live worker
// (never the current leaseholder, never one paused by backpressure) with
// the best health score, ties broken toward the least loaded then the
// lowest address. Nil when no eligible worker exists — hedging onto a sick
// worker would just double the tail.
func (c *Coordinator) hedgeTargetLocked(exclude string) *workerState {
	var best *workerState
	now := time.Now()
	for _, w := range c.workers {
		if !w.live || w.addr == exclude || w.h.probation || now.Before(w.pausedUntil) {
			continue
		}
		switch {
		case best == nil,
			w.h.score > best.h.score,
			w.h.score == best.h.score && w.inflight < best.inflight,
			w.h.score == best.h.score && w.inflight == best.inflight && w.addr < best.addr:
			best = w
		}
	}
	return best
}
