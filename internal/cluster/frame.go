// Package cluster is the multi-process scale-out layer of Pallas: a
// coordinator that shards corpus units across worker processes by content
// hash, dispatches them with work stealing, and survives worker crashes,
// hangs, and slow nodes without losing or double-recording a unit.
//
// The package provides four pieces:
//
//   - the wire frame codec (this file): length-framed, CRC-checked JSON
//     messages carried inside HTTP bodies between coordinator and worker;
//   - Ring: a consistent-hash ring routing each unit to a home worker, so
//     repeat runs land units on the same worker's warm caches and the
//     cluster's shared persistent rcache tier behaves as one cache;
//   - Coordinator: the dispatch state machine (assignment, heartbeats,
//     eviction, bounded retry/requeue, quarantine, duplicate-completion
//     suppression, journaled exactly-once resume, deterministic merge);
//   - Supervisor: spawns local worker processes and restarts crashed ones.
//
// The merge contract is the PR-5 guarantee lifted cluster-wide: the merged
// reports, warning order, and path databases are byte-identical at any
// worker count and under any crash schedule, because per-unit outputs are
// deterministic, completions are recorded first-wins by content hash, and
// the merge is ordered by the input unit list, never by completion order.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"pallas/internal/guard"
)

// Frame types. A frame's payload is JSON; the type byte says which payload
// struct it decodes into.
const (
	// FrameAssign carries an AssignPayload: coordinator → worker, one unit
	// to analyze.
	FrameAssign = byte(0x01)
	// FrameResult carries a ResultPayload: worker → coordinator, the
	// outcome of one assignment (including failed analyses — transport
	// errors are HTTP-level, not frames).
	FrameResult = byte(0x02)
	// FramePeerGet carries a PeerGetPayload: one peer asking another for a
	// cache entry by key.
	FramePeerGet = byte(0x03)
	// FramePeerEntry carries a PeerEntryPayload: the answer to a peer get —
	// found-or-not plus the entry bytes.
	FramePeerEntry = byte(0x04)
	// FramePeerPut carries a PeerPutPayload: a replicated (or read-repair,
	// or hinted-handoff) cache write from one peer to another.
	FramePeerPut = byte(0x05)
)

// validFrameType reports whether typ names a known frame type. Both encode
// and decode enforce it, so an unknown type byte can never be produced or
// accepted — a corrupt type byte fails before the length is trusted.
func validFrameType(typ byte) bool {
	switch typ {
	case FrameAssign, FrameResult, FramePeerGet, FramePeerEntry, FramePeerPut:
		return true
	}
	return false
}

// MaxFramePayload bounds a frame's payload (64 MiB): large enough for any
// merged translation unit's report plus path database, small enough that a
// corrupt or hostile length prefix cannot balloon the heap.
const MaxFramePayload = 64 << 20

// frameMagic opens every frame; a stream that does not start with it is
// rejected immediately instead of being misread as a length.
var frameMagic = [4]byte{'P', 'L', 'S', 'F'}

// Frame decode errors, distinguishable with errors.Is so transports can map
// them to status codes (oversized → 413, everything else → 400).
var (
	// ErrBadMagic reports a stream that does not open with the frame magic.
	ErrBadMagic = errors.New("cluster: bad frame magic")
	// ErrOversized reports a length prefix beyond MaxFramePayload.
	ErrOversized = errors.New("cluster: frame payload exceeds limit")
	// ErrChecksum reports a payload that does not match its CRC.
	ErrChecksum = errors.New("cluster: frame checksum mismatch")
	// ErrTruncated reports a frame cut short of its declared length.
	ErrTruncated = errors.New("cluster: truncated frame")
	// ErrBadType reports an unknown frame type byte.
	ErrBadType = errors.New("cluster: unknown frame type")
)

var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// frame layout: magic(4) type(1) length(4,BE) crc32c(4,BE) payload(length).
const frameHeaderLen = 13

// EncodeFrame frames v (JSON-marshaled) as one wire frame.
func EncodeFrame(typ byte, v any) ([]byte, error) {
	if !validFrameType(typ) {
		return nil, fmt.Errorf("%w: 0x%02x", ErrBadType, typ)
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode frame: %w", err)
	}
	if len(payload) > MaxFramePayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversized, len(payload))
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	copy(buf, frameMagic[:])
	buf[4] = typ
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[9:13], crc32.Checksum(payload, frameCRC))
	copy(buf[frameHeaderLen:], payload)
	return buf, nil
}

// WriteFrame encodes v and writes the frame to w.
func WriteFrame(w io.Writer, typ byte, v any) error {
	buf, err := EncodeFrame(typ, v)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from r and returns its type and payload
// bytes. Every malformed input — wrong magic, unknown type, oversized or
// truncated length, checksum mismatch — returns a typed error and never
// panics, whatever the bytes; FuzzClusterFrame holds the codec to that.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: short header", ErrTruncated)
		}
		return 0, nil, err
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return 0, nil, ErrBadMagic
	}
	typ := hdr[4]
	if !validFrameType(typ) {
		return 0, nil, fmt.Errorf("%w: 0x%02x", ErrBadType, typ)
	}
	n := binary.BigEndian.Uint32(hdr[5:9])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrOversized, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: want %d payload bytes", ErrTruncated, n)
		}
		return 0, nil, err
	}
	if crc32.Checksum(payload, frameCRC) != binary.BigEndian.Uint32(hdr[9:13]) {
		return 0, nil, ErrChecksum
	}
	return typ, payload, nil
}

// DecodeFrame reads one frame of the wanted type and unmarshals its payload
// into v. A frame of a different type is an ErrBadType.
func DecodeFrame(r io.Reader, want byte, v any) error {
	typ, payload, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if typ != want {
		return fmt.Errorf("%w: got 0x%02x, want 0x%02x", ErrBadType, typ, want)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("cluster: decode frame payload: %w", err)
	}
	return nil
}

// AssignPayload is a FrameAssign body: one unit for the worker to analyze.
type AssignPayload struct {
	// Unit identifies the unit (file name) in reports and journals.
	Unit string `json:"unit"`
	// Hash is the unit's content hash; the worker echoes it so completions
	// can be keyed (and de-duplicated) by content, not by connection.
	Hash string `json:"hash"`
	// Source and Spec are the unit's inputs, shipped whole: workers are
	// stateless with respect to the corpus.
	Source string `json:"source"`
	Spec   string `json:"spec,omitempty"`
	// Attempt is the coordinator's 1-based dispatch attempt for this unit,
	// for worker-side logging and journal parity.
	Attempt int `json:"attempt"`
	// Epoch is the fenced lease epoch of this dispatch — monotonic across
	// the run, unique per dispatch (retries and hedges each get a fresh
	// one). The worker echoes it in its result; a completion whose epoch no
	// longer names a valid lease is rejected, which is what makes a zombie
	// worker's late answer harmless.
	Epoch int64 `json:"epoch,omitempty"`
}

// ResultPayload is a FrameResult body: the worker's outcome for one
// assignment. Exactly one of two shapes: Status ok/degraded with Report and
// Paths bytes, or Status failed with Err (and Transient saying whether the
// coordinator should requeue).
type ResultPayload struct {
	// Unit and Hash echo the assignment.
	Unit string `json:"unit"`
	Hash string `json:"hash"`
	// Attempt echoes the assignment's attempt number.
	Attempt int `json:"attempt"`
	// Status is "ok", "degraded", or "failed".
	Status string `json:"status"`
	// Report is the marshaled report JSON (deterministic bytes — identical
	// from any worker at any concurrency, the PR-5 guarantee).
	Report json.RawMessage `json:"report,omitempty"`
	// Paths is the marshaled path database JSON.
	Paths json.RawMessage `json:"paths,omitempty"`
	// Diagnostics carries the unit's degradation record.
	Diagnostics []guard.Diagnostic `json:"diagnostics,omitempty"`
	// Degraded and Warnings mirror the report for cheap scanning.
	Degraded bool `json:"degraded,omitempty"`
	Warnings int  `json:"warnings"`
	// Err is the analysis failure, for Status failed.
	Err string `json:"error,omitempty"`
	// Transient classifies a failure: true means the coordinator may
	// requeue (panic, budget blowout, injected fault), false means the
	// input deterministically fails and retrying is pointless.
	Transient bool `json:"transient,omitempty"`
	// Cache is "hit" when the worker served the result from its cache.
	Cache string `json:"cache,omitempty"`
	// Worker is the responding worker's advertised address.
	Worker string `json:"worker,omitempty"`
	// Epoch echoes the assignment's lease epoch (0 from workers predating
	// fencing; the coordinator then falls back to hash-keyed suppression).
	Epoch int64 `json:"epoch,omitempty"`
	// Sum is the end-to-end content checksum over Report and Paths
	// (rcache.ContentSum), fixed when the analysis produced the bytes. The
	// frame CRC covers one wire hop; Sum covers the whole journey — worker
	// cache, serialization, transport, coordinator merge. Empty means the
	// worker could not attest (old cache entry), not a failure.
	Sum string `json:"sum,omitempty"`
}

// PeerGetPayload is a FramePeerGet body: one peer asking another for a
// cache entry.
type PeerGetPayload struct {
	// Key is the cache key (rcache content key or incr memo key).
	Key string `json:"key"`
	// Space names which cache the key lives in: "unit" (the rcache result
	// cache) or "incr" (the function memo). Empty means "unit".
	Space string `json:"space,omitempty"`
	// Epoch is the requester's ring epoch. A receiver whose epoch is newer
	// refuses the request (HTTP 409), fencing a zombie peer that is routing
	// on a stale ring; a receiver whose epoch is older adopts nothing — it
	// answers anyway, since serving a cache read on a slightly stale ring is
	// harmless (content-addressed keys cannot alias).
	Epoch int64 `json:"epoch,omitempty"`
	// From is the requesting peer's advertised cache address, for logging.
	From string `json:"from,omitempty"`
}

// PeerEntryPayload is a FramePeerEntry body: the answer to a peer get.
type PeerEntryPayload struct {
	Key   string `json:"key"`
	Found bool   `json:"found"`
	// Entry is the marshaled rcache entry JSON (the persistent-tier disk
	// format), present when Found. Its embedded Sum is re-verified by the
	// requester against the entry content — the frame CRC covers this hop,
	// the content sum covers the entry's whole life.
	Entry json.RawMessage `json:"entry,omitempty"`
	// Epoch is the responder's ring epoch, so a requester can learn it is
	// stale and stop trusting its routing until the next peer-map push.
	Epoch int64 `json:"epoch,omitempty"`
}

// PeerPutPayload is a FramePeerPut body: a replicated cache write.
type PeerPutPayload struct {
	Key string `json:"key"`
	// Space names which cache the key lives in ("unit" or "incr"; empty
	// means "unit").
	Space string `json:"space,omitempty"`
	// Entry is the marshaled rcache entry JSON, same format as
	// PeerEntryPayload.Entry.
	Entry json.RawMessage `json:"entry"`
	// Epoch is the sender's ring epoch; stale senders are refused (409) so a
	// zombie peer cannot seed rotted or misrouted entries after eviction.
	Epoch int64 `json:"epoch,omitempty"`
	// From is the sending peer's advertised cache address, for logging.
	From string `json:"from,omitempty"`
}

// PeerMapPath is the worker endpoint that accepts coordinator PeerMap
// pushes (plain JSON over POST). Defined here rather than in rcache/peer so
// the coordinator can address it without importing the tier.
const PeerMapPath = "/v1/cluster/cachemap"

// PeerMap is the coordinator-distributed routing state of the shared cache
// tier: the set of cache endpoints and the replication factor, fenced by a
// monotonic epoch. Workers replace their tier's routing atomically on each
// push and refuse pushes whose epoch is not newer than what they hold.
type PeerMap struct {
	// Epoch is bumped by the coordinator on every membership change. A
	// rejoining zombie worker holds an old epoch; its peer ops carry that
	// epoch and are refused by peers holding a newer map.
	Epoch int64 `json:"epoch"`
	// Peers are the cache endpoints (host:port of each worker's serve
	// engine), sorted for deterministic ring construction.
	Peers []string `json:"peers"`
	// Replicas is the replication factor (how many owners each key has).
	Replicas int `json:"replicas"`
}

// PongPayload is the worker's heartbeat answer (plain JSON over GET — the
// frame codec is reserved for unit traffic, where payloads are large and
// integrity matters; a heartbeat is small, idempotent, and latency-bound).
type PongPayload struct {
	Status        string `json:"status"`
	InFlight      int64  `json:"in_flight"`
	QueueDepth    int    `json:"queue_depth"`
	UnitsDone     int64  `json:"units_done"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}
