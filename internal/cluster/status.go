package cluster

import (
	"encoding/json"
	"net/http"

	"pallas/internal/metrics"
)

// statusHealth is the coordinator's /healthz payload.
type statusHealth struct {
	Status      string `json:"status"`
	UnitsDone   int    `json:"units_done"`
	UnitsTotal  int    `json:"units_total"`
	WorkersLive int    `json:"workers_live"`
}

// statusVerbose is /healthz?verbose=1: the run counters plus the per-worker
// table — queue depth, in-flight, completions, requeues, heartbeat misses
// and last-beat age for every worker the coordinator has seen.
type statusVerbose struct {
	statusHealth
	Stats   Stats          `json:"stats"`
	Workers []WorkerHealth `json:"workers"`
}

// StatusHandler serves the coordinator's observability endpoints:
// /healthz (with ?verbose=1 for the per-worker table) and /metrics
// (Prometheus exposition from reg).
func StatusHandler(c *Coordinator, reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		table := c.WorkerTable()
		live := 0
		for _, row := range table {
			if row.Live {
				live++
			}
		}
		done, total := c.Progress()
		base := statusHealth{Status: "ok", UnitsDone: done, UnitsTotal: total, WorkersLive: live}
		var body any = base
		if r.URL.Query().Get("verbose") == "1" {
			body = statusVerbose{statusHealth: base, Stats: c.Stats(), Workers: table}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	return mux
}
