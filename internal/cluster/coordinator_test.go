package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pallas"
	"pallas/internal/failpoint"
	"pallas/internal/journal"
	"pallas/internal/metrics"
	"pallas/internal/rcache"
)

// fakeWorker is an httptest-backed cluster worker whose behavior per unit
// dispatch is scripted by behave. Its heartbeat and unit endpoints can be
// "killed" (connections dropped mid-request) to simulate a crashed process.
type fakeWorker struct {
	t  *testing.T
	ts *httptest.Server

	mu       sync.Mutex
	perUnit  map[string]int // dispatch count per unit name
	requests int

	dead     atomic.Bool // drop every connection, as a SIGKILLed process would
	pingDead atomic.Bool // drop only heartbeats: the gray half-partition

	// behave decides one dispatch: return (503, _) to shed, or (200, res).
	// seen is how many times this unit has been dispatched here, 1-based.
	behave func(a AssignPayload, seen int) (int, ResultPayload)

	// sendFault, when non-nil, injects a network fault into the result's
	// trip home (the worker-send fault set, scripted per dispatch instead
	// of env-armed).
	sendFault func(a AssignPayload, seen int) failpoint.NetAction
}

func okResult(a AssignPayload, worker string) ResultPayload {
	report := json.RawMessage(fmt.Sprintf(`{"unit":%q,"warnings":[]}`, a.Unit))
	paths := json.RawMessage(fmt.Sprintf(`{"unit":%q,"entries":{}}`, a.Unit))
	return ResultPayload{
		Unit: a.Unit, Hash: a.Hash, Attempt: a.Attempt, Status: "ok",
		Report: report, Paths: paths,
		Worker: worker, Epoch: a.Epoch,
		Sum: rcache.ContentSum(report, paths),
	}
}

func newFakeWorker(t *testing.T, behave func(a AssignPayload, seen int) (int, ResultPayload)) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{t: t, perUnit: map[string]int{}, behave: behave}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/ping", func(w http.ResponseWriter, r *http.Request) {
		if fw.dead.Load() || fw.pingDead.Load() {
			dropConn(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/cluster/unit", func(w http.ResponseWriter, r *http.Request) {
		if fw.dead.Load() {
			dropConn(w)
			return
		}
		var a AssignPayload
		if err := DecodeFrame(r.Body, FrameAssign, &a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fw.mu.Lock()
		fw.requests++
		fw.perUnit[a.Unit]++
		seen := fw.perUnit[a.Unit]
		fw.mu.Unlock()
		code, res := fw.behave(a, seen)
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(code)
			return
		}
		if res.Worker == "" {
			res.Worker = fw.addr()
		}
		if fw.sendFault != nil {
			switch fw.sendFault(a, seen) {
			case failpoint.NetDrop:
				dropConn(w)
				return
			case failpoint.NetCorrupt:
				frame, err := EncodeFrame(FrameResult, res)
				if err != nil {
					fw.t.Errorf("fake worker encode frame: %v", err)
					return
				}
				w.Write(failpoint.Corrupt(frame))
				return
			case failpoint.NetDup:
				frame, err := EncodeFrame(FrameResult, res)
				if err != nil {
					fw.t.Errorf("fake worker encode frame: %v", err)
					return
				}
				w.Write(frame)
				w.Write(frame)
				return
			case failpoint.NetDrip:
				frame, err := EncodeFrame(FrameResult, res)
				if err != nil {
					fw.t.Errorf("fake worker encode frame: %v", err)
					return
				}
				for off := 0; off < len(frame); off += 16 {
					end := off + 16
					if end > len(frame) {
						end = len(frame)
					}
					w.Write(frame[off:end])
					if fl, ok := w.(http.Flusher); ok {
						fl.Flush()
					}
					time.Sleep(time.Millisecond)
				}
				return
			}
		}
		if err := WriteFrame(w, FrameResult, res); err != nil {
			fw.t.Errorf("fake worker write frame: %v", err)
		}
	})
	fw.ts = httptest.NewServer(mux)
	t.Cleanup(fw.ts.Close)
	return fw
}

// dropConn kills the client connection without a response — what a crashed
// worker process looks like from the coordinator.
func dropConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
	}
}

func (fw *fakeWorker) addr() string { return strings.TrimPrefix(fw.ts.URL, "http://") }

func (fw *fakeWorker) dispatches() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.requests
}

func mkUnits(n int) []pallas.Unit {
	units := make([]pallas.Unit, n)
	for i := range units {
		units[i] = pallas.Unit{
			Name:   fmt.Sprintf("u%02d.c", i),
			Source: fmt.Sprintf("int f%d(void) { return %d; }", i, i),
		}
	}
	return units
}

func testOpts() Options {
	return Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   2,
		RequestTimeout:    5 * time.Second,
		Inflight:          2,
		Retries:           2,
		RetryBackoff:      10 * time.Millisecond,
		WorkerlessGrace:   3 * time.Second,
		Metrics:           metrics.NewRegistry(),
	}
}

func runCluster(t *testing.T, opts Options, workers []*fakeWorker, units []pallas.Unit) ([]Outcome, Stats, error) {
	t.Helper()
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, fw := range workers {
		c.AddWorker(fw.addr())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return c.Run(ctx, units)
}

func TestClusterHappyPath(t *testing.T) {
	behave := func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	}
	w1, w2 := newFakeWorker(t, behave), newFakeWorker(t, behave)
	units := mkUnits(8)
	outcomes, stats, err := runCluster(t, testOpts(), []*fakeWorker{w1, w2}, units)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 8 || stats.Failed+stats.Quarantined != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	for i, o := range outcomes {
		if o.Unit != units[i].Name {
			t.Fatalf("outcome %d out of input order: got %s, want %s", i, o.Unit, units[i].Name)
		}
		if o.Status != journal.StatusOK || o.Attempts != 1 {
			t.Fatalf("outcome %s: %+v", o.Unit, o)
		}
		want := fmt.Sprintf(`{"unit":%q,"warnings":[]}`, o.Unit)
		if string(o.Report) != want {
			t.Fatalf("outcome %s report: got %s, want %s", o.Unit, o.Report, want)
		}
	}
	if w1.dispatches() == 0 || w2.dispatches() == 0 {
		t.Fatalf("dispatch imbalance: w1=%d w2=%d", w1.dispatches(), w2.dispatches())
	}
}

func TestClusterBackpressureRequeuesWithoutBurningAttempt(t *testing.T) {
	// The worker sheds each unit's first dispatch with 503; the retry must
	// not count as an attempt (admission was refused, no analysis started).
	behave := func(a AssignPayload, seen int) (int, ResultPayload) {
		if seen == 1 {
			return http.StatusServiceUnavailable, ResultPayload{}
		}
		return http.StatusOK, okResult(a, "")
	}
	w := newFakeWorker(t, behave)
	outcomes, stats, err := runCluster(t, testOpts(), []*fakeWorker{w}, mkUnits(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Backpressure == 0 {
		t.Fatalf("no backpressure recorded: %+v", stats)
	}
	if stats.Requeues != 0 {
		t.Fatalf("shed dispatches must not count as failure requeues: %+v", stats)
	}
	for _, o := range outcomes {
		if o.Status != journal.StatusOK || o.Attempts != 1 {
			t.Fatalf("outcome %s: status=%s attempts=%d", o.Unit, o.Status, o.Attempts)
		}
	}
}

func TestClusterTransientFailureRetries(t *testing.T) {
	behave := func(a AssignPayload, seen int) (int, ResultPayload) {
		if seen == 1 {
			return http.StatusOK, ResultPayload{Unit: a.Unit, Hash: a.Hash, Attempt: a.Attempt,
				Status: "failed", Err: "injected panic", Transient: true}
		}
		return http.StatusOK, okResult(a, "")
	}
	w := newFakeWorker(t, behave)
	outcomes, stats, err := runCluster(t, testOpts(), []*fakeWorker{w}, mkUnits(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeues != 2 || stats.Completed != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	for _, o := range outcomes {
		if o.Status != journal.StatusOK || o.Attempts != 2 {
			t.Fatalf("outcome %s: status=%s attempts=%d", o.Unit, o.Status, o.Attempts)
		}
	}
}

func TestClusterDeterministicFailureNotRetried(t *testing.T) {
	behave := func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, ResultPayload{Unit: a.Unit, Hash: a.Hash, Attempt: a.Attempt,
			Status: "failed", Err: "parse error", Transient: false}
	}
	w := newFakeWorker(t, behave)
	outcomes, stats, err := runCluster(t, testOpts(), []*fakeWorker{w}, mkUnits(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 || stats.Requeues != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	o := outcomes[0]
	if o.Status != journal.StatusFailed || o.Attempts != 1 || o.Err != "parse error" {
		t.Fatalf("outcome: %+v", o)
	}
}

func TestClusterQuarantineAfterRetriesExhausted(t *testing.T) {
	behave := func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, ResultPayload{Unit: a.Unit, Hash: a.Hash, Attempt: a.Attempt,
			Status: "failed", Err: "still panicking", Transient: true}
	}
	w := newFakeWorker(t, behave)
	opts := testOpts()
	opts.Retries = 1
	outcomes, stats, err := runCluster(t, opts, []*fakeWorker{w}, mkUnits(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Quarantined != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	o := outcomes[0]
	if o.Status != journal.StatusQuarantined || o.Attempts != 2 {
		t.Fatalf("outcome: %+v", o)
	}
}

func TestClusterWorkerDeathEvictsAndRequeues(t *testing.T) {
	// w1 drops every connection from the start (heartbeats included); all
	// units must still complete, on w2, after w1 is evicted.
	w1 := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	})
	w1.dead.Store(true)
	w2 := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	})
	units := mkUnits(6)
	outcomes, stats, err := runCluster(t, testOpts(), []*fakeWorker{w1, w2}, units)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evictions != 1 {
		t.Fatalf("evictions: %+v", stats)
	}
	for _, o := range outcomes {
		if o.Status != journal.StatusOK {
			t.Fatalf("outcome %s: %+v", o.Unit, o)
		}
		if o.Worker != w2.addr() {
			t.Fatalf("unit %s completed by %s, want survivor %s", o.Unit, o.Worker, w2.addr())
		}
	}
}

func TestClusterDuplicateCompletionSuppressed(t *testing.T) {
	// w1 accepts both units (Inflight=2), then goes silent: heartbeats fail,
	// w1 is evicted with both responses still in flight, both units requeue
	// to w2. w2 completes u0 but blocks on u1, holding the run open. Then
	// w1's stale responses are released on their still-open connections:
	// u0's is a duplicate completion (w2 already recorded it) and must be
	// suppressed — first completion wins, keyed by the echoed content hash.
	releaseLate := make(chan struct{})
	holdU2 := make(chan struct{})
	var w1 *fakeWorker
	w1 = newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		if w1.dispatches() >= 2 {
			w1.dead.Store(true) // only heartbeats notice: these two
			// requests were accepted before death
		}
		<-releaseLate
		return http.StatusOK, okResult(a, "late-"+a.Unit)
	})
	w2 := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		if a.Unit == "u02.c" {
			// u2 holds the run open until the duplicate is observed, so
			// the run's shutdown cannot cancel the late response in flight.
			<-holdU2
		}
		return http.StatusOK, okResult(a, "")
	})
	var relOnce, holdOnce sync.Once
	rel := func() { relOnce.Do(func() { close(releaseLate) }) }
	unhold := func() { holdOnce.Do(func() { close(holdU2) }) }
	t.Cleanup(rel) // run before the servers close: unblock their handlers
	t.Cleanup(unhold)

	c, err := NewCoordinator(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.AddWorker(w1.addr())
	done := make(chan struct{})
	var outcomes []Outcome
	var stats Stats
	var runErr error
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		outcomes, stats, runErr = c.Run(ctx, mkUnits(3))
	}()
	await := func(what string, cond func() bool) {
		t.Helper()
		for i := 0; !cond(); i++ {
			if i > 2000 {
				t.Fatalf("timed out waiting: %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// w1 (Inflight=2) holds u0 and u1 in flight; u2 waits in its queue.
	await("w1 holds two units", func() bool { return w1.dispatches() >= 2 })
	c.AddWorker(w2.addr())
	// Eviction requeues everything to w2: u0 completes there, u2 blocks.
	await("w2 records a first completion", func() bool { return c.Stats().Completed >= 1 })
	rel() // w1's stale responses flow; u0's is a duplicate
	await("duplicate suppressed", func() bool { return c.Stats().DupCompletions >= 1 })
	unhold()
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if stats.Completed != 3 {
		t.Fatalf("each unit must be recorded exactly once: %+v", stats)
	}
	if stats.DupCompletions < 1 {
		t.Fatalf("no duplicate suppressed: %+v", stats)
	}
	if outcomes[0].Worker != w2.addr() {
		t.Fatalf("first completion should win for u0: recorded %q, want %q",
			outcomes[0].Worker, w2.addr())
	}
	for _, o := range outcomes {
		if o.Status != journal.StatusOK {
			t.Fatalf("outcome %s: %+v", o.Unit, o)
		}
	}
}

func TestClusterJournalResumeSkipsFinishedUnits(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "cluster.journal")
	behave := func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	}
	units := mkUnits(4)

	opts := testOpts()
	opts.JournalPath = jpath
	_, stats, err := runCluster(t, opts, []*fakeWorker{newFakeWorker(t, behave)}, units)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 4 {
		t.Fatalf("first run stats: %+v", stats)
	}

	// Second coordinator, same journal, resume on: every unit replays; the
	// worker must see zero dispatches.
	w2 := newFakeWorker(t, behave)
	opts2 := testOpts()
	opts2.JournalPath = jpath
	opts2.Resume = true
	outcomes, stats2, err := runCluster(t, opts2, []*fakeWorker{w2}, units)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Skipped != 4 || stats2.Completed != 0 {
		t.Fatalf("resume stats: %+v", stats2)
	}
	if w2.dispatches() != 0 {
		t.Fatalf("resume re-dispatched %d units", w2.dispatches())
	}
	for _, o := range outcomes {
		if !o.Skipped || o.Status != journal.StatusOK {
			t.Fatalf("replayed outcome: %+v", o)
		}
		want := fmt.Sprintf(`{"unit":%q,"warnings":[]}`, o.Unit)
		if string(o.Report) != want {
			t.Fatalf("replayed report for %s: got %s, want %s", o.Unit, o.Report, want)
		}
	}

	// Changing a unit's content invalidates its journal entry.
	units[2].Source += " /* edited */"
	w3 := newFakeWorker(t, behave)
	opts3 := testOpts()
	opts3.JournalPath = jpath
	opts3.Resume = true
	outcomes3, stats3, err := runCluster(t, opts3, []*fakeWorker{w3}, units)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Skipped != 3 || stats3.Completed != 1 {
		t.Fatalf("edited-unit resume stats: %+v", stats3)
	}
	if outcomes3[2].Skipped {
		t.Fatal("edited unit must be re-analyzed, not replayed")
	}
}

func TestClusterWorkerlessRunFails(t *testing.T) {
	opts := testOpts()
	opts.WorkerlessGrace = 300 * time.Millisecond
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, _, err = c.Run(ctx, mkUnits(2))
	if err == nil || !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("workerless run: err=%v", err)
	}
}

func TestClusterContextCancelAborts(t *testing.T) {
	// A worker that never answers unit requests: cancel must end the run.
	block := make(chan struct{})
	defer close(block)
	w := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		<-block
		return http.StatusOK, okResult(a, "")
	})
	c, err := NewCoordinator(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.AddWorker(w.addr())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = c.Run(ctx, mkUnits(2))
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("cancel did not abort promptly (%s)", time.Since(start))
	}
}

func TestClusterLateWorkerDrainsOrphans(t *testing.T) {
	// Run starts with zero workers; AddWorker mid-run must adopt the
	// orphaned units and finish them.
	w := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	})
	c, err := NewCoordinator(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var stats Stats
	var runErr error
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, stats, runErr = c.Run(ctx, mkUnits(3))
	}()
	time.Sleep(100 * time.Millisecond)
	c.AddWorker(w.addr())
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if stats.Completed != 3 {
		t.Fatalf("stats: %+v", stats)
	}
}
