package cluster

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"pallas/internal/metrics"
)

// syncBuffer is a threadsafe bytes.Buffer for capturing forwarded worker
// stderr (the forwarding goroutine races the test's reads).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// fakeWorkerScript is a /bin/sh stand-in for a worker process: it announces
// a listen address (so the supervisor counts it as up), reveals whether the
// failpoint env survived into its environment, and dies.
const fakeWorkerScript = `echo "pallas: worker listening on 127.0.0.1:1" >&2
echo "env:[$PALLAS_FAILPOINTS]" >&2
exit 1`

// TestSupervisorRestartEnvScrubbed: the first incarnation runs with the
// armed failpoint env; every restart must run with RestartEnv instead — a
// crash-armed worker restarted with its bomb intact would crash-loop
// through the whole restart budget without finishing a unit.
func TestSupervisorRestartEnvScrubbed(t *testing.T) {
	var buf syncBuffer
	var mu sync.Mutex
	ups := 0
	exhausted := make(chan error, 1)
	sup := NewSupervisor(SupervisorOptions{
		Binary:       "/bin/sh",
		Args:         []string{"-c", fakeWorkerScript},
		Env:          []string{"PATH=/bin:/usr/bin", "PALLAS_FAILPOINTS=pre-parse=kill@1"},
		RestartEnv:   []string{"PATH=/bin:/usr/bin"},
		MaxRestarts:  2,
		RestartDelay: 10 * time.Millisecond,
		OnUp: func(addr string) {
			mu.Lock()
			ups++
			mu.Unlock()
		},
		OnExhausted: func(slot int, err error) {
			exhausted <- err
		},
		Stderr:  &buf,
		Metrics: metrics.NewRegistry(),
	})
	sup.Start(1)
	select {
	case <-exhausted:
	case <-time.After(10 * time.Second):
		t.Fatal("slot never exhausted its restart budget")
	}
	sup.Stop()

	mu.Lock()
	gotUps := ups
	mu.Unlock()
	if gotUps != 3 { // initial start + MaxRestarts restarts
		t.Fatalf("worker came up %d times, want 3", gotUps)
	}
	// The stderr forwarders are not synchronized with slot exit; wait for
	// all three incarnations' env lines to land before counting.
	deadline := time.Now().Add(5 * time.Second)
	for strings.Count(buf.String(), "env:[") < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("stderr never captured 3 env lines:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	out := buf.String()
	if n := strings.Count(out, "env:[pre-parse=kill@1]"); n != 1 {
		t.Fatalf("armed env seen %d times, want exactly 1 (first incarnation only):\n%s", n, out)
	}
	if n := strings.Count(out, "env:[]"); n != 2 {
		t.Fatalf("scrubbed env seen %d times, want 2 (both restarts):\n%s", n, out)
	}
}

// TestSupervisorBoundedRestartExhaustion: a worker that dies MaxRestarts+1
// times surfaces a terminal OnExhausted callback — exactly once, with the
// exit error — and the slot goroutine exits instead of spinning.
func TestSupervisorBoundedRestartExhaustion(t *testing.T) {
	var mu sync.Mutex
	var exhaustions []int
	done := make(chan struct{}, 4)
	sup := NewSupervisor(SupervisorOptions{
		Binary:       "/bin/sh",
		Args:         []string{"-c", fakeWorkerScript},
		Env:          []string{"PATH=/bin:/usr/bin"},
		MaxRestarts:  1,
		RestartDelay: 10 * time.Millisecond,
		OnExhausted: func(slot int, err error) {
			mu.Lock()
			exhaustions = append(exhaustions, slot)
			mu.Unlock()
			if err == nil {
				t.Error("OnExhausted called with nil error; want the exit error")
			}
			done <- struct{}{}
		},
		Metrics: metrics.NewRegistry(),
	})
	sup.Start(2)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("slots never exhausted")
		}
	}
	// No spin: nothing further may fire after exhaustion.
	time.Sleep(100 * time.Millisecond)
	sup.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(exhaustions) != 2 {
		t.Fatalf("OnExhausted fired %d times, want exactly 2 (once per slot): %v", len(exhaustions), exhaustions)
	}
	if !(exhaustions[0] == 0 && exhaustions[1] == 1 || exhaustions[0] == 1 && exhaustions[1] == 0) {
		t.Fatalf("exhausted slots %v, want {0, 1}", exhaustions)
	}
}
