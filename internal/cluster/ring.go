package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring mapping unit content hashes to worker
// addresses. Each member is placed at ringReplicas pseudo-random points; a
// key is owned by the first member point at or after the key's point. The
// properties the cluster relies on:
//
//   - stability: the same key maps to the same live member across runs, so
//     a unit's repeat analyses land on the worker whose memory cache (and
//     persistent-tier working set) is warm for it — the cluster presents
//     one cache even though each worker fills its own tiers;
//   - minimal disruption: removing a member only re-homes the keys it
//     owned; every other key keeps its worker.
//
// Ring is not safe for concurrent use; the Coordinator guards it with its
// own mutex.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// ringReplicas is the default virtual-node count per member: enough to keep
// the largest/smallest member load ratio near 1 for single-digit clusters.
const ringReplicas = 64

// NewRing builds a ring over the given members.
func NewRing(members ...string) *Ring {
	r := &Ring{replicas: ringReplicas, members: map[string]bool{}}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (no-op if present).
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + strconv.Itoa(i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its points (no-op if absent).
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owners returns the first n distinct members encountered walking the ring
// clockwise from key's point: the key's replica set, in preference order.
// The first element is Owner(key); successors are the natural re-home
// targets if it fails, which is what makes the set stable under membership
// churn. Fewer than n members on the ring returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		m := r.points[i].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
			if len(out) == n {
				break
			}
		}
		i++
	}
	return out
}

// Members returns the current member set (sorted, for deterministic
// reporting).
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }
