package cluster

import (
	"fmt"
	"testing"
)

func TestRingStableRouting(t *testing.T) {
	r := NewRing("w1", "w2", "w3")
	r2 := NewRing("w3", "w1", "w2") // insertion order must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("unit-%d", i)
		if r.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner of %s differs across construction orders", key)
		}
	}
}

func TestRingRemoveOnlyRehomesRemoved(t *testing.T) {
	r := NewRing("w1", "w2", "w3")
	before := map[string]string{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("unit-%d", i)
		before[key] = r.Owner(key)
	}
	r.Remove("w2")
	moved, kept := 0, 0
	for key, owner := range before {
		after := r.Owner(key)
		if owner == "w2" {
			if after == "w2" {
				t.Fatalf("%s still owned by removed member", key)
			}
			moved++
			continue
		}
		if after != owner {
			t.Fatalf("%s re-homed from %s to %s though %s was not removed", key, owner, after, owner)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingSpread(t *testing.T) {
	r := NewRing("w1", "w2", "w3", "w4")
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("unit-%d", i))]++
	}
	for _, m := range r.Members() {
		if counts[m] < n/16 {
			t.Fatalf("member %s starved: %v", m, counts)
		}
	}
}

func TestRingEmptyAndReAdd(t *testing.T) {
	r := NewRing()
	if r.Owner("x") != "" || r.Len() != 0 {
		t.Fatal("empty ring should own nothing")
	}
	r.Add("w1")
	r.Add("w1") // idempotent
	if r.Len() != 1 || r.Owner("x") != "w1" {
		t.Fatalf("single-member ring: len=%d owner=%q", r.Len(), r.Owner("x"))
	}
	r.Remove("w1")
	r.Remove("w1") // idempotent
	if r.Len() != 0 || r.Owner("x") != "" {
		t.Fatal("ring not empty after removal")
	}
}
