package cluster

import (
	"fmt"
	"testing"
)

func TestRingStableRouting(t *testing.T) {
	r := NewRing("w1", "w2", "w3")
	r2 := NewRing("w3", "w1", "w2") // insertion order must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("unit-%d", i)
		if r.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner of %s differs across construction orders", key)
		}
	}
}

func TestRingRemoveOnlyRehomesRemoved(t *testing.T) {
	r := NewRing("w1", "w2", "w3")
	before := map[string]string{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("unit-%d", i)
		before[key] = r.Owner(key)
	}
	r.Remove("w2")
	moved, kept := 0, 0
	for key, owner := range before {
		after := r.Owner(key)
		if owner == "w2" {
			if after == "w2" {
				t.Fatalf("%s still owned by removed member", key)
			}
			moved++
			continue
		}
		if after != owner {
			t.Fatalf("%s re-homed from %s to %s though %s was not removed", key, owner, after, owner)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingSpread(t *testing.T) {
	r := NewRing("w1", "w2", "w3", "w4")
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("unit-%d", i))]++
	}
	for _, m := range r.Members() {
		if counts[m] < n/16 {
			t.Fatalf("member %s starved: %v", m, counts)
		}
	}
}

func TestRingEmptyAndReAdd(t *testing.T) {
	r := NewRing()
	if r.Owner("x") != "" || r.Len() != 0 {
		t.Fatal("empty ring should own nothing")
	}
	r.Add("w1")
	r.Add("w1") // idempotent
	if r.Len() != 1 || r.Owner("x") != "w1" {
		t.Fatalf("single-member ring: len=%d owner=%q", r.Len(), r.Owner("x"))
	}
	r.Remove("w1")
	r.Remove("w1") // idempotent
	if r.Len() != 0 || r.Owner("x") != "" {
		t.Fatal("ring not empty after removal")
	}
}

func TestRingOwnersPrefixAndDistinct(t *testing.T) {
	r := NewRing("w1", "w2", "w3", "w4")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("unit-%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%s, 2) = %v, want 2 members", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%s)[0] = %s, want primary %s", key, owners[0], r.Owner(key))
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%s) repeats a member: %v", key, owners)
		}
	}
}

func TestRingOwnersClampsAndEmpty(t *testing.T) {
	if got := NewRing().Owners("x", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	r := NewRing("w1", "w2")
	if got := r.Owners("x", 0); got != nil {
		t.Fatalf("Owners(n=0) = %v, want nil", got)
	}
	got := r.Owners("x", 5)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("Owners(n>members) = %v, want both members once", got)
	}
}

// TestRingOwnersStableUnderUnrelatedChurn: the replica set of a key only
// changes when one of its own owners joins or leaves — the property hinted
// handoff and warm re-checks rely on.
func TestRingOwnersStableUnderUnrelatedChurn(t *testing.T) {
	r := NewRing("w1", "w2", "w3", "w4", "w5")
	type pair [2]string
	before := map[string]pair{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("unit-%d", i)
		o := r.Owners(key, 2)
		before[key] = pair{o[0], o[1]}
	}
	r.Remove("w5")
	for key, was := range before {
		if was[0] == "w5" || was[1] == "w5" {
			continue // re-homed by design
		}
		o := r.Owners(key, 2)
		if o[0] != was[0] {
			t.Fatalf("%s primary moved %s -> %s though neither owner was removed", key, was[0], o[0])
		}
	}
}
