package cluster

// The network-fault chaos matrix: every frame-level fault mode the failpoint
// layer can inject — delay, drop, corrupt, duplicate, slow-drip, on both the
// dispatch path (coord-send, env/Arm-armed inside the coordinator's send)
// and the result path (worker-send, scripted on the fake worker) — run over
// the same corpus, asserting the two invariants that make the cluster safe
// to put in front of CI:
//
//  1. the merged output (outcome order, report bytes, merged path database)
//     is byte-identical to the undisturbed run, whatever the fault;
//  2. the journal holds exactly one terminal record per unit — faults may
//     add Assigned records, never a second terminal one.
//
// Plus the two faults the matrix exists for: a zombie worker revived after
// eviction whose late completion must be fenced out, and a corrupting
// worker whose payloads lie beneath an intact frame CRC.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"pallas"
	"pallas/internal/failpoint"
	"pallas/internal/journal"
	"pallas/internal/rcache"
)

// chaosBaseline runs the corpus with no faults and returns the merged
// paths bytes every fault-mode run must reproduce.
func chaosBaseline(t *testing.T, units []pallas.Unit) ([]Outcome, []byte) {
	t.Helper()
	behave := func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	}
	w1, w2, w3 := newFakeWorker(t, behave), newFakeWorker(t, behave), newFakeWorker(t, behave)
	outcomes, _, err := runCluster(t, testOpts(), []*fakeWorker{w1, w2, w3}, units)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	merged, err := WriteMergedPaths(outcomes)
	if err != nil {
		t.Fatal(err)
	}
	return outcomes, merged
}

// assertChaosInvariants checks byte-identity against the baseline and
// exactly one terminal journal record per unit.
func assertChaosInvariants(t *testing.T, mode string, units []pallas.Unit,
	base []Outcome, baseMerged []byte, got []Outcome, journalPath string) {
	t.Helper()
	if len(got) != len(base) {
		t.Fatalf("[%s] outcome count: got %d, want %d", mode, len(got), len(base))
	}
	for i := range got {
		if got[i].Unit != base[i].Unit {
			t.Fatalf("[%s] outcome %d order: got %s, want %s", mode, i, got[i].Unit, base[i].Unit)
		}
		if string(got[i].Report) != string(base[i].Report) {
			t.Fatalf("[%s] %s report bytes diverged:\n got %s\nwant %s",
				mode, got[i].Unit, got[i].Report, base[i].Report)
		}
		if got[i].Status != journal.StatusOK {
			t.Fatalf("[%s] %s status: got %s, want ok", mode, got[i].Unit, got[i].Status)
		}
	}
	merged, err := WriteMergedPaths(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(merged) != string(baseMerged) {
		t.Fatalf("[%s] merged path database diverged from baseline", mode)
	}
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatalf("[%s] open journal: %v", mode, err)
	}
	defer f.Close()
	recs, err := journal.ReadAll(f)
	if err != nil {
		t.Fatalf("[%s] read journal: %v", mode, err)
	}
	terminal := map[string]int{}
	for _, rec := range recs {
		if rec.Status.Terminal() {
			terminal[rec.Unit]++
		}
	}
	for _, u := range units {
		if terminal[u.Name] != 1 {
			t.Fatalf("[%s] unit %s has %d terminal journal records, want exactly 1",
				mode, u.Name, terminal[u.Name])
		}
	}
}

// chaosIters returns the iteration count for the matrix: 1 by default, more
// when PALLAS_CHAOS_ITERS is set (the nightly extended-chaos CI job cranks
// it up under -race).
func chaosIters() int {
	if v := os.Getenv("PALLAS_CHAOS_ITERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// chaosJournalPath places a run's journal under PALLAS_CHAOS_JOURNAL_DIR
// when set (CI uploads that directory as an artifact on failure) and under
// the test's temp dir otherwise.
func chaosJournalPath(t *testing.T, name string) string {
	if dir := os.Getenv("PALLAS_CHAOS_JOURNAL_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			return filepath.Join(dir, name+".journal")
		}
	}
	return filepath.Join(t.TempDir(), name+".journal")
}

// TestClusterChaosMatrix is the table: one run per fault mode, both sides
// of the wire, all against one baseline.
func TestClusterChaosMatrix(t *testing.T) {
	units := mkUnits(10)
	base, baseMerged := chaosBaseline(t, units)

	// Worker-side faults hit every third unit's first delivery, once per
	// unit across the whole fleet (the requeue must land on an unfaulted
	// attempt, wherever it goes — the sendFault closure is shared by all
	// three workers). A factory, because the faulted set must reset between
	// iterations.
	scripted := func(act failpoint.NetAction) func() func(a AssignPayload, seen int) failpoint.NetAction {
		return func() func(a AssignPayload, seen int) failpoint.NetAction {
			var mu sync.Mutex
			faulted := map[string]bool{}
			return func(a AssignPayload, seen int) failpoint.NetAction {
				var n int
				fmt.Sscanf(a.Unit, "u%02d.c", &n)
				if n%3 != 0 {
					return failpoint.NetNone
				}
				mu.Lock()
				defer mu.Unlock()
				if faulted[a.Unit] {
					return failpoint.NetNone
				}
				faulted[a.Unit] = true
				return act
			}
		}
	}
	cases := []struct {
		mode      string
		armSpec   string // coordinator-side coord-send fault, "" for none
		sendFault func() func(a AssignPayload, seen int) failpoint.NetAction
	}{
		{mode: "delay-dispatch", armSpec: "coord-send=sleep:30ms@3"},
		{mode: "drop-dispatch", armSpec: "coord-send=drop@3"},
		{mode: "corrupt-dispatch", armSpec: "coord-send=corrupt@3"},
		{mode: "duplicate-dispatch", armSpec: "coord-send=dup@3"},
		{mode: "drip-dispatch", armSpec: "coord-send=drip:2ms@3"},
		{mode: "drop-result", sendFault: scripted(failpoint.NetDrop)},
		{mode: "corrupt-result-frame", sendFault: scripted(failpoint.NetCorrupt)},
		{mode: "duplicate-result", sendFault: scripted(failpoint.NetDup)},
		{mode: "drip-result", sendFault: scripted(failpoint.NetDrip)},
	}
	iters := chaosIters()
	for _, tc := range cases {
		t.Run(tc.mode, func(t *testing.T) {
			for it := 0; it < iters; it++ {
				runChaosCase(t, fmt.Sprintf("%s-%d", tc.mode, it),
					tc.armSpec, tc.sendFault, units, base, baseMerged)
			}
		})
	}
}

// runChaosCase is one armed run of the matrix: arm the coordinator-side
// fault (if any), script the worker-side fault (if any), run the corpus and
// hold it to the baseline.
func runChaosCase(t *testing.T, name, armSpec string,
	mkFault func() func(a AssignPayload, seen int) failpoint.NetAction,
	units []pallas.Unit, base []Outcome, baseMerged []byte) {
	t.Helper()
	if armSpec != "" {
		if err := failpoint.Arm(armSpec); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm()
	}
	behave := func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	}
	w1, w2, w3 := newFakeWorker(t, behave), newFakeWorker(t, behave), newFakeWorker(t, behave)
	if mkFault != nil {
		fault := mkFault()
		w1.sendFault, w2.sendFault, w3.sendFault = fault, fault, fault
	}
	opts := testOpts()
	// Result-side drops and corruptions are transport failures and
	// count toward eviction; the matrix injects several per run, so
	// give the miss budget headroom — the invariants under test are
	// byte-identity and journal shape, not eviction thresholds.
	opts.HeartbeatMisses = 5
	opts.JournalPath = chaosJournalPath(t, name)
	got, stats, err := runCluster(t, opts, []*fakeWorker{w1, w2, w3}, units)
	if err != nil {
		t.Fatalf("[%s] run: %v (stats %+v)", name, err, stats)
	}
	assertChaosInvariants(t, name, units, base, baseMerged, got, opts.JournalPath)
}

// TestClusterZombieWorkerFenced is the fencing proof: a worker goes deaf to
// heartbeats while holding a unit (the gray half-partition), is evicted,
// and then its held completion arrives — after eviction invalidated its
// lease, before the re-dispatch finished. The fence must reject it as
// stale, count it, and let the re-dispatch (not the zombie) record the
// unit, leaving the merged output byte-identical to the baseline.
func TestClusterZombieWorkerFenced(t *testing.T) {
	units := mkUnits(4)
	base, baseMerged := chaosBaseline(t, units)

	zombieHeld := make(chan struct{})    // closed when the zombie holds u00
	zombieRelease := make(chan struct{}) // closed to let the zombie answer
	redisHold := make(chan struct{})     // closed to let the re-dispatch finish

	var w1, w2 *fakeWorker
	w1 = newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		if a.Unit == "u00.c" {
			close(zombieHeld)
			<-zombieRelease
		}
		return http.StatusOK, okResult(a, "")
	})
	w2 = newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		if a.Unit == "u00.c" {
			<-redisHold
		}
		return http.StatusOK, okResult(a, "")
	})

	opts := testOpts()
	opts.JournalPath = filepath.Join(t.TempDir(), "zombie.journal")
	opts.HedgeAfter = -1 // isolate the fence from hedging
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Route u00 to w1 by adding only w1 first; the rest drains after.
	c.AddWorker(w1.addr())
	go func() {
		<-zombieHeld
		w1.pingDead.Store(true) // deaf to liveness, still holding the unit
		c.AddWorker(w2.addr())
		// Wait for the eviction, then revive the zombie's answer while the
		// re-dispatch is still held on w2.
		for c.Stats().Evictions == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		close(zombieRelease)
		for c.Stats().StaleCompletions == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		close(redisHold)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, stats, err := c.Run(ctx, units)
	if err != nil {
		t.Fatalf("run: %v (stats %+v)", err, stats)
	}
	if stats.StaleCompletions != 1 {
		t.Fatalf("stale completions: got %d, want 1 (stats %+v)", stats.StaleCompletions, stats)
	}
	if stats.Evictions != 1 {
		t.Fatalf("evictions: got %d, want 1", stats.Evictions)
	}
	if got[0].Worker != w2.addr() {
		t.Fatalf("u00.c recorded by %s, want re-dispatch worker %s (the zombie must not win)",
			got[0].Worker, w2.addr())
	}
	assertChaosInvariants(t, "zombie", units, base, baseMerged, got, opts.JournalPath)
}

// TestClusterIntegrityFailureQuarantinesWorker: a worker whose results lie
// beneath an intact frame (payload mangled after the checksum was fixed)
// is caught by the end-to-end content sum, its results discarded without
// burning the units' retry budget, and the worker evicted at
// IntegrityLimit offenses. The fleet's output is unchanged.
func TestClusterIntegrityFailureQuarantinesWorker(t *testing.T) {
	units := mkUnits(6)
	base, baseMerged := chaosBaseline(t, units)

	corrupt := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		res := okResult(a, "")
		res.Report = failpoint.CorruptJSON(res.Report) // Sum now lies about the bytes
		return http.StatusOK, res
	})
	honest := newFakeWorker(t, func(a AssignPayload, seen int) (int, ResultPayload) {
		return http.StatusOK, okResult(a, "")
	})

	opts := testOpts()
	opts.JournalPath = filepath.Join(t.TempDir(), "integrity.journal")
	opts.IntegrityLimit = 2
	got, stats, err := runCluster(t, opts, []*fakeWorker{corrupt, honest}, units)
	if err != nil {
		t.Fatalf("run: %v (stats %+v)", err, stats)
	}
	if stats.IntegrityFailures < 2 {
		t.Fatalf("integrity failures: got %d, want >= 2 (stats %+v)", stats.IntegrityFailures, stats)
	}
	if stats.Evictions != 1 {
		t.Fatalf("evictions: got %d, want 1 (the corrupting worker)", stats.Evictions)
	}
	if stats.Quarantined != 0 {
		t.Fatalf("quarantined units: got %d, want 0 — integrity failures must refund the attempt", stats.Quarantined)
	}
	for _, o := range got {
		if o.Worker != honest.addr() {
			t.Fatalf("%s recorded by %s, want the honest worker %s", o.Unit, o.Worker, honest.addr())
		}
		if sum := rcache.ContentSum(o.Report, o.Paths); o.Report == nil || sum == "" {
			t.Fatalf("%s: empty verified outcome", o.Unit)
		}
	}
	assertChaosInvariants(t, "integrity", units, base, baseMerged, got, opts.JournalPath)
}
