package spec

import (
	"strings"
	"testing"

	"pallas/internal/cparse"
)

func TestParseAllDirectives(t *testing.T) {
	text := `
# page allocation spec
fastpath get_page_from_freelist
slowpath alloc_pages_slowpath
pair fast_fn slow_fn
immutable gfp_mask nodemask migratetype
correlated preferred_zone nodemask
cond order pred_flags
order remote_ok oom_ok
returns rcv {0, -EIO, FROZEN}
match_output fast_fn slow_fn
check_return btrfs_wait_ordered_range
fault state_active handler=remove_from_list
fault err
hotstruct inode
cache icache of inode
`
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(s.FastPaths) != 1 || s.FastPaths[0] != "get_page_from_freelist" {
		t.Errorf("fastpaths = %v", s.FastPaths)
	}
	if len(s.Immutables) != 3 {
		t.Errorf("immutables = %v", s.Immutables)
	}
	if len(s.Correlated) != 1 || s.Correlated[0].A != "preferred_zone" {
		t.Errorf("correlated = %+v", s.Correlated)
	}
	if len(s.CondVars) != 2 {
		t.Errorf("condvars = %v", s.CondVars)
	}
	if len(s.Orders) != 1 || s.Orders[0].First != "remote_ok" || s.Orders[0].Second != "oom_ok" {
		t.Errorf("orders = %+v", s.Orders)
	}
	if len(s.Returns) != 1 || s.Returns[0].Func != "rcv" || len(s.Returns[0].Values) != 3 {
		t.Errorf("returns = %+v", s.Returns)
	}
	if s.Returns[0].Values[1] != "-EIO" {
		t.Errorf("returns values = %v", s.Returns[0].Values)
	}
	if len(s.MatchOutput) != 1 || len(s.CheckReturn) != 1 {
		t.Errorf("match/check = %+v / %+v", s.MatchOutput, s.CheckReturn)
	}
	if len(s.Faults) != 2 || s.Faults[0].Handler != "remove_from_list" || s.Faults[1].Handler != "" {
		t.Errorf("faults = %+v", s.Faults)
	}
	if len(s.HotStructs) != 1 || len(s.Caches) != 1 || s.Caches[0].State != "inode" {
		t.Errorf("ds = %+v / %+v", s.HotStructs, s.Caches)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate x",
		"immutable",
		"correlated a",
		"order a",
		"returns f 0 1",       // missing braces
		"returns f {}",        // empty set
		"cache a b c",         // missing 'of'
		"fault s handlr=typo", // unknown option
		"pair onlyone",
	}
	for _, b := range bad {
		if _, err := Parse(b); err == nil {
			t.Errorf("%q: expected error", b)
		}
	}
}

func TestFromAnnotations(t *testing.T) {
	src := `
// @pallas: fastpath f; immutable x
/* @pallas: cond y */
int f(int x, int y) { if (y) return x; return 0; }
`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromAnnotations(tu)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FastPaths) != 1 || len(s.Immutables) != 1 || len(s.CondVars) != 1 {
		t.Errorf("spec from annotations = %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a, _ := Parse("fastpath f\nimmutable x\n")
	b, _ := Parse("slowpath g\nimmutable y\ncond z\n")
	a.Merge(b)
	a.Merge(nil)
	if len(a.Immutables) != 2 || len(a.SlowPaths) != 1 || len(a.CondVars) != 1 {
		t.Errorf("merged = %+v", a)
	}
}

func TestAnalyzedFuncsOrderAndDedup(t *testing.T) {
	s, _ := Parse(`
fastpath f
pair f g
slowpath g
match_output f g
returns h {0}
`)
	got := s.AnalyzedFuncs()
	want := []string{"f", "g", "h"}
	if len(got) != len(want) {
		t.Fatalf("analyzed = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("analyzed = %v, want %v", got, want)
		}
	}
	fast := s.FastFuncs()
	if len(fast) != 1 || fast[0] != "f" {
		t.Errorf("fast = %v", fast)
	}
}

func TestStringRoundTrip(t *testing.T) {
	text := `fastpath f
slowpath g
pair f g
immutable a b
correlated x y
cond c
order p q
returns f {0, 1}
match_output f g
check_return h
fault s handler=k
hotstruct page
cache icache of inode
`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	rendered := s.String()
	s2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse of %q: %v", rendered, err)
	}
	if s2.String() != rendered {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", rendered, s2.String())
	}
	if !strings.Contains(rendered, "fault s handler=k") {
		t.Errorf("rendered: %s", rendered)
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	s, err := Parse("\n# comment\n\nfastpath f\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FastPaths) != 1 {
		t.Errorf("spec = %+v", s)
	}
}

func TestScopedDirectives(t *testing.T) {
	s, err := Parse(`
fastpath alloc free
immutable alloc:gfp_mask shared_flag
cond alloc:order
fault free:cmd_state handler=cleanup
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Immutables) != 2 {
		t.Fatalf("immutables = %+v", s.Immutables)
	}
	scoped, unscoped := s.Immutables[0], s.Immutables[1]
	if scoped.Func != "alloc" || scoped.Name != "gfp_mask" {
		t.Errorf("scoped = %+v", scoped)
	}
	if !scoped.AppliesTo("alloc") || scoped.AppliesTo("free") {
		t.Error("scoping wrong")
	}
	if unscoped.Func != "" || !unscoped.AppliesTo("free") {
		t.Errorf("unscoped = %+v", unscoped)
	}
	if s.Faults[0].Func != "free" || s.Faults[0].State != "cmd_state" {
		t.Errorf("fault = %+v", s.Faults[0])
	}
	// Round trip preserves scopes.
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s.String())
	}
	if s2.Immutables[0].Func != "alloc" || s2.Faults[0].Func != "free" {
		t.Errorf("scope lost in round trip:\n%s", s2.String())
	}
}
