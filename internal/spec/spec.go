// Package spec implements the Pallas semantic-annotation protocol. The paper
// requires users to "specify the simple semantic information as the input for
// the static checking rules"; this package defines that input language.
//
// A spec is a line-oriented text document; the same directives may also be
// embedded in C sources as `// @pallas: <directive>` comments. Directives:
//
//	fastpath <func>                 analyzed fast-path entry function
//	slowpath <func>                 corresponding slow-path function
//	pair <fast> <slow>              fast/slow pair (shorthand for cross checks)
//	immutable <var> ...             rules 1.1 / 1.2
//	correlated <varA> <varB>        rule 1.3
//	cond <var> ...                  rules 2.1 / 2.2 (trigger-condition variables)
//	order <varA> <varB>             rule 2.3 (A must be checked before B)
//	returns <func> {v1, v2, ...}    rule 3.1 (defined return values)
//	match_output <fast> <slow>      rule 3.2
//	check_return <callee>           rule 3.3 (result of <callee> must be checked)
//	fault <state> [handler=<func>]  rule 4.1
//	hotstruct <tag>                 rule 5.1
//	cache <cacheTarget> of <state>  rule 5.2
//
// Lines beginning with '#' are comments; blank lines are ignored.
//
// Variables in immutable, cond and fault directives may be scoped to one
// fast path with a "func:" prefix ("immutable __alloc_pages:gfp_mask"):
// unscoped variables are checked in every declared fast path, scoped ones
// only in the named function. Scoping keeps multi-fast-path units from
// cross-multiplying every obligation onto every path.
package spec

import (
	"fmt"
	"strings"

	"pallas/internal/cast"
)

// FaultSpec is one rule-4.1 obligation.
type FaultSpec struct {
	// Func optionally scopes the obligation to one fast path ("" = all).
	Func string
	// State is the fault state variable or error-code name that must appear
	// in a flow-control statement.
	State string
	// Handler optionally names a function that must be invoked to handle it.
	Handler string
}

// AppliesTo reports whether the obligation applies to the named function.
func (f FaultSpec) AppliesTo(fn string) bool { return f.Func == "" || f.Func == fn }

// CachePair is one rule-5.2 obligation: every update of State must be
// followed by an update of Cache on the same path.
type CachePair struct {
	Cache string
	State string
}

// ReturnSet is a rule-3.1 obligation.
type ReturnSet struct {
	Func   string
	Values []string // rendered constants or enum names
}

// Pair names a fast path and its slow path.
type Pair struct {
	Fast string
	Slow string
}

// Order is a rule-2.3 obligation: First must be tested before Second.
type Order struct {
	First  string
	Second string
}

// Correlation is a rule-1.3 obligation.
type Correlation struct {
	A string
	B string
}

// ScopedVar is a variable obligation, optionally restricted to one fast-path
// function (Func == "" means every declared fast path).
type ScopedVar struct {
	Func string
	Name string
}

// parseScoped splits "func:var" into its parts.
func parseScoped(s string) ScopedVar {
	if i := strings.IndexByte(s, ':'); i > 0 {
		return ScopedVar{Func: s[:i], Name: s[i+1:]}
	}
	return ScopedVar{Name: s}
}

// AppliesTo reports whether the obligation applies to the named function.
func (v ScopedVar) AppliesTo(fn string) bool { return v.Func == "" || v.Func == fn }

// String renders the scoped form back to directive syntax.
func (v ScopedVar) String() string {
	if v.Func == "" {
		return v.Name
	}
	return v.Func + ":" + v.Name
}

// Spec is the parsed semantic annotation set for one analysis target.
type Spec struct {
	FastPaths   []string
	SlowPaths   []string
	Pairs       []Pair
	Immutables  []ScopedVar
	Correlated  []Correlation
	CondVars    []ScopedVar
	Orders      []Order
	Returns     []ReturnSet
	MatchOutput []Pair
	CheckReturn []string
	Faults      []FaultSpec
	HotStructs  []string
	Caches      []CachePair
}

// Parse parses a spec document.
func Parse(text string) (*Spec, error) {
	s := &Spec{}
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := s.AddDirective(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	return s, nil
}

// FromAnnotations builds a spec from `@pallas:` annotations in a parsed
// translation unit, merged in source order.
func FromAnnotations(tu *cast.TranslationUnit) (*Spec, error) {
	s := &Spec{}
	for _, a := range tu.Annotations {
		// One annotation may carry several ';'-separated directives.
		for _, part := range strings.Split(a.Text, ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if err := s.AddDirective(part); err != nil {
				return nil, fmt.Errorf("%s: %w", a.P, err)
			}
		}
	}
	return s, nil
}

// Merge folds other into s.
func (s *Spec) Merge(other *Spec) {
	if other == nil {
		return
	}
	s.FastPaths = append(s.FastPaths, other.FastPaths...)
	s.SlowPaths = append(s.SlowPaths, other.SlowPaths...)
	s.Pairs = append(s.Pairs, other.Pairs...)
	s.Immutables = append(s.Immutables, other.Immutables...)
	s.Correlated = append(s.Correlated, other.Correlated...)
	s.CondVars = append(s.CondVars, other.CondVars...)
	s.Orders = append(s.Orders, other.Orders...)
	s.Returns = append(s.Returns, other.Returns...)
	s.MatchOutput = append(s.MatchOutput, other.MatchOutput...)
	s.CheckReturn = append(s.CheckReturn, other.CheckReturn...)
	s.Faults = append(s.Faults, other.Faults...)
	s.HotStructs = append(s.HotStructs, other.HotStructs...)
	s.Caches = append(s.Caches, other.Caches...)
}

// AddDirective parses a single directive line into s.
func (s *Spec) AddDirective(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return fmt.Errorf("empty directive")
	}
	op, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s: want at least %d arguments, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "fastpath":
		if err := need(1); err != nil {
			return err
		}
		s.FastPaths = append(s.FastPaths, args...)
	case "slowpath":
		if err := need(1); err != nil {
			return err
		}
		s.SlowPaths = append(s.SlowPaths, args...)
	case "pair":
		if err := need(2); err != nil {
			return err
		}
		s.Pairs = append(s.Pairs, Pair{Fast: args[0], Slow: args[1]})
	case "immutable":
		if err := need(1); err != nil {
			return err
		}
		for _, a := range args {
			s.Immutables = append(s.Immutables, parseScoped(a))
		}
	case "correlated":
		if err := need(2); err != nil {
			return err
		}
		s.Correlated = append(s.Correlated, Correlation{A: args[0], B: args[1]})
	case "cond":
		if err := need(1); err != nil {
			return err
		}
		for _, a := range args {
			s.CondVars = append(s.CondVars, parseScoped(a))
		}
	case "order":
		if err := need(2); err != nil {
			return err
		}
		s.Orders = append(s.Orders, Order{First: args[0], Second: args[1]})
	case "returns":
		if err := need(2); err != nil {
			return err
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "returns"))
		i := strings.IndexByte(rest, '{')
		j := strings.LastIndexByte(rest, '}')
		if i < 0 || j < i {
			return fmt.Errorf("returns: expected {v1, v2, ...}")
		}
		fn := strings.TrimSpace(rest[:i])
		var vals []string
		for _, v := range strings.Split(rest[i+1:j], ",") {
			v = strings.TrimSpace(v)
			if v != "" {
				vals = append(vals, v)
			}
		}
		if fn == "" || len(vals) == 0 {
			return fmt.Errorf("returns: need function and at least one value")
		}
		s.Returns = append(s.Returns, ReturnSet{Func: fn, Values: vals})
	case "match_output":
		if err := need(2); err != nil {
			return err
		}
		s.MatchOutput = append(s.MatchOutput, Pair{Fast: args[0], Slow: args[1]})
	case "check_return":
		if err := need(1); err != nil {
			return err
		}
		s.CheckReturn = append(s.CheckReturn, args...)
	case "fault":
		if err := need(1); err != nil {
			return err
		}
		sv := parseScoped(args[0])
		f := FaultSpec{Func: sv.Func, State: sv.Name}
		for _, a := range args[1:] {
			if v, ok := strings.CutPrefix(a, "handler="); ok {
				f.Handler = v
			} else {
				return fmt.Errorf("fault: unknown option %q", a)
			}
		}
		s.Faults = append(s.Faults, f)
	case "hotstruct":
		if err := need(1); err != nil {
			return err
		}
		s.HotStructs = append(s.HotStructs, args...)
	case "cache":
		// cache <target> of <state>
		if len(args) != 3 || args[1] != "of" {
			return fmt.Errorf("cache: want 'cache <target> of <state>'")
		}
		s.Caches = append(s.Caches, CachePair{Cache: args[0], State: args[2]})
	default:
		return fmt.Errorf("unknown directive %q", op)
	}
	return nil
}

func joinScoped(vs []ScopedVar) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, " ")
}

// AnalyzedFuncs returns the fast- and slow-path function names to extract,
// de-duplicated, fast paths first.
func (s *Spec) AnalyzedFuncs() []string {
	seen := map[string]bool{}
	var out []string
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, f := range s.FastPaths {
		add(f)
	}
	for _, p := range s.Pairs {
		add(p.Fast)
	}
	for _, f := range s.SlowPaths {
		add(f)
	}
	for _, p := range s.Pairs {
		add(p.Slow)
	}
	for _, p := range s.MatchOutput {
		add(p.Fast)
		add(p.Slow)
	}
	for _, r := range s.Returns {
		add(r.Func)
	}
	return out
}

// FastFuncs returns the declared fast-path functions (fastpath + pair fasts).
func (s *Spec) FastFuncs() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range s.FastPaths {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, p := range s.Pairs {
		if !seen[p.Fast] {
			seen[p.Fast] = true
			out = append(out, p.Fast)
		}
	}
	return out
}

// String renders the spec back to directive text (stable ordering).
func (s *Spec) String() string {
	var sb strings.Builder
	for _, f := range s.FastPaths {
		fmt.Fprintf(&sb, "fastpath %s\n", f)
	}
	for _, f := range s.SlowPaths {
		fmt.Fprintf(&sb, "slowpath %s\n", f)
	}
	for _, p := range s.Pairs {
		fmt.Fprintf(&sb, "pair %s %s\n", p.Fast, p.Slow)
	}
	if len(s.Immutables) > 0 {
		fmt.Fprintf(&sb, "immutable %s\n", joinScoped(s.Immutables))
	}
	for _, c := range s.Correlated {
		fmt.Fprintf(&sb, "correlated %s %s\n", c.A, c.B)
	}
	if len(s.CondVars) > 0 {
		fmt.Fprintf(&sb, "cond %s\n", joinScoped(s.CondVars))
	}
	for _, o := range s.Orders {
		fmt.Fprintf(&sb, "order %s %s\n", o.First, o.Second)
	}
	for _, r := range s.Returns {
		fmt.Fprintf(&sb, "returns %s {%s}\n", r.Func, strings.Join(r.Values, ", "))
	}
	for _, p := range s.MatchOutput {
		fmt.Fprintf(&sb, "match_output %s %s\n", p.Fast, p.Slow)
	}
	for _, c := range s.CheckReturn {
		fmt.Fprintf(&sb, "check_return %s\n", c)
	}
	for _, f := range s.Faults {
		state := ScopedVar{Func: f.Func, Name: f.State}.String()
		if f.Handler != "" {
			fmt.Fprintf(&sb, "fault %s handler=%s\n", state, f.Handler)
		} else {
			fmt.Fprintf(&sb, "fault %s\n", state)
		}
	}
	for _, h := range s.HotStructs {
		fmt.Fprintf(&sb, "hotstruct %s\n", h)
	}
	for _, c := range s.Caches {
		fmt.Fprintf(&sb, "cache %s of %s\n", c.Cache, c.State)
	}
	return sb.String()
}
