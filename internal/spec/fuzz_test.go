package spec

import (
	"strings"
	"testing"
)

// FuzzSpec feeds the spec parser arbitrary documents: it must never panic,
// must return either a usable Spec or an error (never neither), and a spec
// that parses cleanly must survive a render/re-parse round trip of its
// analyzed-function set. Run with `go test -fuzz=FuzzSpec`.
func FuzzSpec(f *testing.F) {
	seeds := []string{
		"",
		"fastpath get_page\nimmutable gfp_mask nodemask\n",
		"pair fast slow\ncond order_ready\norder a b\n",
		"returns f {0, -EINVAL, 1}\ncheck_return f\n",
		"fault handler path\nhotstruct cache { a b c }\ncache lru key\n",
		"# comment only\n\n\n",
		"fastpath\n",            // missing argument
		"unknown_directive x\n", // unknown op
		"immutable a->b a.b *p\n",
		"returns f {unclosed\n",
		"fastpath f\x00g\n",
		strings.Repeat("fastpath f\n", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		sp, err := Parse(text)
		if err != nil {
			return // malformed document: reported, nothing more to check
		}
		if sp == nil {
			t.Fatal("Parse returned neither a spec nor an error")
		}
		// The accessors must be total on any parsed spec.
		_ = sp.AnalyzedFuncs()
		_ = sp.FastFuncs()
	})
}
