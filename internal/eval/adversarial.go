package eval

import (
	"fmt"
	"time"

	"pallas"
	"pallas/internal/corpus"
)

// AdversarialResult summarizes a robustness sweep over the hostile
// mini-corpus: every unit must come back with a structured outcome — the
// malformed ones with per-unit diagnostics, the healthy controls with their
// expected warnings — and no unit may panic or hang the batch.
type AdversarialResult struct {
	// Units counts all analyzed units; Malformed/Healthy split them.
	Units, Malformed, Healthy int
	// Diagnosed counts malformed units that produced at least one diagnostic
	// (units whose hostility is purely structural only need to complete).
	Diagnosed int
	// HealthyWarned counts healthy controls whose seeded bug was reported.
	HealthyWarned int
	// Violations lists units that broke the robustness contract.
	Violations []string
	// Retried, Quarantined and Resumed summarize the durability machinery:
	// retry attempts spent, units set aside after persistent transient
	// failure, and units skipped because a checkpoint journal already held
	// their terminal outcome.
	Retried, Quarantined, Resumed int
	// Journaled reports whether the sweep ran with a checkpoint journal.
	Journaled bool
}

// Passed reports whether every unit honoured the contract.
func (r *AdversarialResult) Passed() bool { return len(r.Violations) == 0 }

// Render prints the sweep like the other eval tables.
func (r *AdversarialResult) Render() string {
	out := "adversarial robustness sweep — hostile inputs under KeepGoing\n"
	out += fmt.Sprintf("  units analyzed        %3d (%d malformed, %d healthy)\n",
		r.Units, r.Malformed, r.Healthy)
	out += fmt.Sprintf("  malformed contained   %3d/%d\n", r.Diagnosed, r.Malformed)
	out += fmt.Sprintf("  healthy still warned  %3d/%d\n", r.HealthyWarned, r.Healthy)
	if r.Journaled {
		out += fmt.Sprintf("  durability            %d retried, %d quarantined, %d resumed from journal\n",
			r.Retried, r.Quarantined, r.Resumed)
	}
	if r.Passed() {
		out += "  contract: PASS — no panic, no hang, no lost unit\n"
	} else {
		for _, v := range r.Violations {
			out += "  contract violation: " + v + "\n"
		}
	}
	return out
}

// RunAdversarial batch-analyzes the hostile corpus with fault isolation and
// checks the robustness contract unit by unit.
func RunAdversarial(workers int) *AdversarialResult {
	r, _ := RunAdversarialDurable(workers, "", false)
	return r
}

// RunAdversarialDurable is RunAdversarial on the journaled batch runner:
// with a journal path the sweep checkpoints per-unit outcomes (so a killed
// sweep resumes where it left off), retries transient failures, and reports
// retry/quarantine/resume counts in its summary. The error is non-nil only
// when the journal cannot be opened.
func RunAdversarialDurable(workers int, journalPath string, resume bool) (*AdversarialResult, error) {
	units := corpus.Adversarial()
	includes := map[string]string{}
	batch := make([]pallas.Unit, len(units))
	for i, u := range units {
		batch[i] = pallas.Unit{Name: u.Name, Source: u.Source, Spec: u.Spec}
		for k, v := range u.Includes {
			includes[k] = v
		}
	}
	a := pallas.New(pallas.Config{
		KeepGoing: true,
		Deadline:  10 * time.Second, // backstop so a hostile unit cannot hang the sweep
		Includes:  includes,
	})
	opts := pallas.BatchOptions{Workers: workers}
	if journalPath != "" {
		opts.JournalPath = journalPath
		opts.Resume = resume
		opts.Retries = 2 // hostile units may fail transiently; give them two more chances
	}
	results, stats, err := a.AnalyzeBatch(batch, opts)
	if err != nil {
		return nil, err
	}

	res := &AdversarialResult{
		Units:       len(units),
		Retried:     stats.Retried,
		Quarantined: stats.Quarantined,
		Resumed:     stats.Skipped,
		Journaled:   journalPath != "",
	}
	for i, u := range units {
		r := results[i]
		if u.Healthy {
			res.Healthy++
			switch {
			case r.Err != nil:
				res.Violations = append(res.Violations, fmt.Sprintf("%s: healthy unit failed: %v", u.Name, r.Err))
			case len(r.Result.Report.Warnings) == 0:
				res.Violations = append(res.Violations, u.Name+": healthy unit lost its warning")
			default:
				res.HealthyWarned++
			}
			continue
		}
		res.Malformed++
		switch {
		case r.Err != nil:
			// KeepGoing must turn malformed input into diagnostics, not errors.
			res.Violations = append(res.Violations, fmt.Sprintf("%s: fatal error despite KeepGoing: %v", u.Name, r.Err))
		case u.WantDiagnostic && len(r.Diagnostics) == 0:
			res.Violations = append(res.Violations, u.Name+": no diagnostic for malformed input")
		default:
			res.Diagnosed++
		}
	}
	return res, nil
}
