package eval

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAdversarialDurableResumes runs the hostile sweep with a checkpoint
// journal, then resumes it: the second pass must skip every unit, uphold the
// same contract, and surface the durability counters in its summary.
func TestAdversarialDurableResumes(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "adversarial.jsonl")

	first, err := RunAdversarialDurable(0, jpath, false)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Passed() {
		t.Fatalf("journaled sweep broke the contract:\n%s", first.Render())
	}
	if first.Resumed != 0 || !first.Journaled {
		t.Fatalf("first pass: %+v", first)
	}

	second, err := RunAdversarialDurable(0, jpath, true)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Passed() {
		t.Fatalf("resumed sweep broke the contract:\n%s", second.Render())
	}
	if second.Resumed != second.Units {
		t.Fatalf("resumed %d of %d units", second.Resumed, second.Units)
	}
	if second.Diagnosed != first.Diagnosed || second.HealthyWarned != first.HealthyWarned {
		t.Fatalf("replayed sweep drifted: first %+v second %+v", first, second)
	}
	if !strings.Contains(second.Render(), "durability") {
		t.Fatalf("summary missing durability line:\n%s", second.Render())
	}
}

// TestAdversarialPlainHasNoDurabilityLine keeps the unjournaled render
// unchanged.
func TestAdversarialPlainHasNoDurabilityLine(t *testing.T) {
	r := RunAdversarial(0)
	if !r.Passed() {
		t.Fatalf("plain sweep broke the contract:\n%s", r.Render())
	}
	if strings.Contains(r.Render(), "durability") {
		t.Fatalf("plain render grew a durability line:\n%s", r.Render())
	}
}
