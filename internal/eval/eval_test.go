package eval

import (
	"strings"
	"testing"
)

// TestTable1HeadlineNumbers is the end-to-end assertion of the paper's
// headline result: 155 validated bugs, 224 warnings, 69% accuracy, with no
// corpus case failing to fire.
func TestTable1HeadlineNumbers(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBugs != 155 {
		t.Errorf("bugs = %d, want 155", res.TotalBugs)
	}
	if res.TotalWarnings != 224 {
		t.Errorf("warnings = %d, want 224", res.TotalWarnings)
	}
	if a := res.Accuracy(); a < 0.68 || a > 0.70 {
		t.Errorf("accuracy = %.3f, want ≈0.69", a)
	}
	if len(res.Missed) != 0 {
		t.Errorf("missed cases: %v", res.Missed)
	}
	if res.CasesRun != 224 {
		t.Errorf("cases run = %d, want 224", res.CasesRun)
	}
	out := res.Render()
	for _, want := range []string{"155/224", "accuracy: 69%", "paper 27/37"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable1PerRowMatchesPaper(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	wantBW := map[string][2]int{
		"state-overwrite": {10, 16}, "state-uninit": {10, 16}, "state-correlated": {9, 15},
		"cond-missing": {19, 21}, "cond-incomplete": {14, 18}, "cond-order": {8, 15},
		"out-mismatch": {12, 19}, "out-unexpected": {12, 14}, "out-unchecked": {11, 18},
		"fault-missing": {27, 37},
		"ds-layout":     {15, 21}, "ds-stale": {8, 14},
	}
	for f, bw := range wantBW {
		if res.RowBugs[f] != bw[0] || res.RowWarnings[f] != bw[1] {
			t.Errorf("%s: %d/%d, want %d/%d", f, res.RowBugs[f], res.RowWarnings[f], bw[0], bw[1])
		}
	}
}

func TestStudyTables(t *testing.T) {
	for name, f := range map[string]func() string{
		"table2": RenderTable2, "table3": RenderTable3,
		"table4": RenderTable4, "table6": RenderTable6,
	} {
		out := f()
		if len(out) < 50 {
			t.Errorf("%s suspiciously short:\n%s", name, out)
		}
	}
	if !strings.Contains(RenderTable2(), "62") {
		t.Error("table2 missing MM patch count")
	}
	if !strings.Contains(RenderTable3(), "34%") {
		t.Error("table3 missing MM state ratio")
	}
	if !strings.Contains(RenderTable4(), "44%") {
		t.Error("table4 missing path-state ratio")
	}
	if !strings.Contains(RenderTable6(), "Open vSwitch") {
		t.Error("table6 missing OVS")
	}
}

func TestTable5Sections(t *testing.T) {
	out, err := RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Input", "Signature", "Condition", "State", "Output",
		"@immutable = gfp_mask",
		"alloc_pages_nodemask(gfp_mask, order, local_zone, zone)",
		"gfp_mask = (E#memalloc_noio_flags((S#gfp_mask)))",
		"rule 1.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table5 missing %q in:\n%s", want, out)
		}
	}
}

func TestTable7AllDetected(t *testing.T) {
	res, err := RunTable7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 34 {
		t.Fatalf("rows = %d, want 34", len(res.Rows))
	}
	if len(res.Detected) != 34 {
		t.Errorf("detected %d/34", len(res.Detected))
	}
	if res.MeanLatentYears < 2.8 || res.MeanLatentYears > 3.4 {
		t.Errorf("latent mean = %.2f, want ≈3.1", res.MeanLatentYears)
	}
	out := res.Render()
	if !strings.Contains(out, "mpt3sas_base.c") || !strings.Contains(out, "dpif-netdev.c") {
		t.Errorf("render missing known files:\n%s", out)
	}
}

func TestTable8Completeness(t *testing.T) {
	res, err := RunTable8()
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 61 || res.Total != 62 {
		t.Errorf("completeness = %d/%d, want 61/62", res.Detected, res.Total)
	}
	out := res.Render()
	if !strings.Contains(out, "5/6 *") {
		t.Errorf("render missing the starred miss:\n%s", out)
	}
}

func TestFPBreakdown(t *testing.T) {
	res, err := RunFP()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 69 {
		t.Errorf("false positives = %d, want 69", res.Total)
	}
	if res.Warnings != 224 {
		t.Errorf("warnings = %d, want 224", res.Warnings)
	}
	ratio := float64(res.Total) / float64(res.Warnings)
	if ratio < 0.30 || ratio > 0.32 {
		t.Errorf("FP ratio = %.3f, want ≈0.31", ratio)
	}
	if !strings.Contains(res.Render(), "31%") {
		t.Errorf("render:\n%s", res.Render())
	}
}

func TestFigures(t *testing.T) {
	for n := 1; n <= 9; n++ {
		out, err := RunFigure(n)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if len(out) < 40 {
			t.Errorf("figure %d too short:\n%s", n, out)
		}
		if n >= 3 && !strings.Contains(out, "checker verdict") {
			t.Errorf("figure %d missing verdict:\n%s", n, out)
		}
		if n >= 3 && strings.Contains(out, "NO WARNING") {
			t.Errorf("figure %d bug not detected:\n%s", n, out)
		}
	}
	if _, err := RunFigure(10); err == nil {
		t.Error("figure 10 should error")
	}
}

func TestFigure1ContainsAllThreeWorkflows(t *testing.T) {
	out, err := RunFigure(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"get_page_from_freelist", "alloc_pages_slowpath",
		"ubifs_write_fast", "ubifs_write_slow",
		"tcp_rcv_fast", "tcp_rcv_slow",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 missing %q", want)
		}
	}
}

func TestFigure2KeyElements(t *testing.T) {
	out, err := RunFigure(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Sin", "Ct", "Sout", "trigger variables"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing %q:\n%s", want, out)
		}
	}
}

func TestRunBigFiles(t *testing.T) {
	out, err := RunBigFiles()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mm/page_alloc.c", "tcp_input.c", "ubifs", "gfp_mask",
		"likely consequence", "2 warning(s)", "3 warning(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("bigfile output missing %q", want)
		}
	}
}

func TestRenderFindings(t *testing.T) {
	out := RenderFindings()
	for _, want := range []string{
		"Finding 1", "Finding 5",
		"Rule 1.1", "Rule 2.3", "Rule 3.2", "Rule 4.1", "Rule 5.2",
		"Overwriting immutable variables", "51%",
		"path-state", "data-struct",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q", want)
		}
	}
}
