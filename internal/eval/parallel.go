package eval

import (
	"fmt"

	"pallas/internal/checkers"
	"pallas/internal/corpus"
	"pallas/internal/guard"
	"pallas/internal/report"
)

// RunTable1Parallel is RunTable1 with the corpus fanned out over a worker
// pool. Results are folded in case order, so the aggregate is identical to
// the serial run regardless of scheduling; a crash in one case surfaces as
// that case's error instead of taking the whole run down.
func RunTable1Parallel(workers int) (*Table1Result, error) {
	reg := corpus.Generate()
	reps := make([]*report.Report, len(reg.Cases))
	errs := guard.Pool(len(reg.Cases), workers, func(i int) error {
		c := reg.Cases[i]
		var err error
		reps[i], err = analyzeCase(c.File, c.Source, c.Spec)
		return err
	})

	res := &Table1Result{
		Cells:       map[string]map[corpus.System]*Table1Cell{},
		RowBugs:     map[string]int{},
		RowWarnings: map[string]int{},
	}
	for _, f := range report.AllFindings() {
		res.Cells[f] = map[corpus.System]*Table1Cell{}
		for _, s := range corpus.Systems() {
			res.Cells[f][s] = &Table1Cell{}
		}
	}
	for i, c := range reg.Cases {
		if errs[i] != nil {
			return nil, fmt.Errorf("case %s: %w", c.ID, errs[i])
		}
		res.CasesRun++
		fired := false
		for _, w := range reps[i].Warnings {
			cell := res.Cells[w.Finding][c.System]
			cell.Warnings++
			res.RowWarnings[w.Finding]++
			res.TotalWarnings++
			if w.Finding == c.Finding {
				fired = true
				if c.Kind == corpus.Bug {
					cell.Bugs++
					res.RowBugs[w.Finding]++
					res.TotalBugs++
				}
			}
		}
		if !fired {
			res.Missed = append(res.Missed, c.ID)
		}
	}
	return res, nil
}

// AblationResult measures each checker's contribution to Table 1.
type AblationResult struct {
	// Rows maps checker name → bugs found by that checker alone over the
	// full corpus.
	Rows []AblationRow
}

// AblationRow is one checker's solo contribution.
type AblationRow struct {
	Checker  string
	Bugs     int
	Warnings int
}

// RunAblation reruns the corpus once per checker, each time with only that
// checker enabled — the per-tool decomposition of the 155-bug total.
func RunAblation() (*AblationResult, error) {
	reg := corpus.Generate()
	res := &AblationResult{}
	for _, c := range checkers.All() {
		row := AblationRow{Checker: c.Name()}
		for _, cs := range reg.Cases {
			rep, err := analyzeOneChecker(cs.File, cs.Source, cs.Spec, c)
			if err != nil {
				return nil, fmt.Errorf("case %s: %w", cs.ID, err)
			}
			row.Warnings += len(rep.Warnings)
			for _, w := range rep.Warnings {
				if w.Finding == cs.Finding && cs.Kind == corpus.Bug {
					row.Bugs++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the ablation table.
func (a *AblationResult) Render() string {
	out := "checker ablation — solo contribution over the full corpus\n"
	totalB, totalW := 0, 0
	for _, r := range a.Rows {
		out += fmt.Sprintf("  %-20s %3d bugs  %3d warnings\n", r.Checker, r.Bugs, r.Warnings)
		totalB += r.Bugs
		totalW += r.Warnings
	}
	out += fmt.Sprintf("  %-20s %3d bugs  %3d warnings (checkers are disjoint by construction)\n",
		"sum", totalB, totalW)
	return out
}
