package eval

import (
	"strings"
	"testing"

	"pallas/internal/corpus"
)

func TestRunTiming(t *testing.T) {
	res, err := RunTiming()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 224 {
		t.Errorf("cases = %d, want 224", res.Cases)
	}
	if res.Mean <= 0 || res.Median <= 0 || res.Max < res.Median {
		t.Errorf("degenerate timing: %+v", res)
	}
	for _, s := range corpus.Systems() {
		if res.PerSystem[s] <= 0 {
			t.Errorf("system %s has no timing", s)
		}
	}
	out := res.Render()
	for _, want := range []string{"analysis cost per fast path", "mean", "MM"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
