package eval

import (
	"fmt"
	"strings"

	"pallas/internal/report"
	"pallas/internal/study"
)

// findingBox reproduces one of the paper's boxed Finding/Rule pairs (§3).
type findingBox struct {
	Aspect  report.Aspect
	Finding string
	Rules   []string
}

var findingBoxes = []findingBox{
	{
		Aspect: report.PathState,
		Finding: "Most of the path state bugs in fast paths are caused by three reasons: " +
			"(1) uninitialized immutable variables; (2) immutable variables are overwritten; " +
			"(3) incomplete implementation of correlated variables.",
		Rules: []string{
			"Rule 1.1: for any specified immutable variable X, X should be initialized.",
			"Rule 1.2: X should never be overwritten.",
			"Rule 1.3: for any specified correlated variables X and Y, the correlation between them should be detected in a path.",
		},
	},
	{
		Aspect: report.TriggerCondition,
		Finding: "Most condition checking bugs are caused by three reasons: " +
			"(1) trigger condition checking for path switch is missing; " +
			"(2) incomplete implementation of condition checking; (3) incorrect order of condition checking.",
		Rules: []string{
			"Rule 2.1: for any specified variable X for trigger condition checking, X should appear in its flow control statement.",
			"Rule 2.2: for all specified variables, they should satisfy Rule 2.1.",
			"Rule 2.3: for any specified trigger conditions X and Y with X before Y, this order should be enforced and detected in the path.",
		},
	},
	{
		Aspect: report.PathOutput,
		Finding: "71% of the fast-path bugs related to path output are caused by three reasons: " +
			"(1) the output is beyond the predefined states; (2) the output of the fast path and slow path does not match; " +
			"(3) the checking of the fast path's return is missing.",
		Rules: []string{
			"Rule 3.1: for any specified return R of a fast path, R should belong to a set of defined returns or expected states RS.",
			"Rule 3.2: R should be the same as the defined return of the slow path for specified cases.",
			"Rule 3.3: R should be checked for specified cases.",
		},
	},
	{
		Aspect: report.FaultHandling,
		Finding: "Most of the fault handling bugs in fast paths are caused by missing the fault handling " +
			"implementation, even though the fault or error codes are well defined.",
		Rules: []string{
			"Rule 4.1: for any specified fault state S, S should appear at least in a flow control statement as an indication that it is handled.",
		},
	},
	{
		Aspect: report.DataStructure,
		Finding: "The assistant data structures in a fast path could introduce new bugs mainly because of two reasons: " +
			"(1) less care on the organization of the assistant data structures; " +
			"(2) uncoordinated updates between path states and their cached entries.",
		Rules: []string{
			"Rule 5.1: for any specified assistant data structure DS, the unused variables in it should be separated from DS for performance reasons.",
			"Rule 5.2: for any DS used for caching path states, an update on one of the path states should be followed by an update on the corresponding DS.",
		},
	},
}

// RenderFindings reproduces the five Finding/Rule boxes of §3, each with the
// sub-type proportions quoted in the prose and the implementing checker.
func RenderFindings() string {
	checkerOf := map[report.Aspect]string{
		report.PathState:        "path-state",
		report.TriggerCondition: "trigger-condition",
		report.PathOutput:       "path-output",
		report.FaultHandling:    "fault-handling",
		report.DataStructure:    "data-struct",
	}
	shares := study.SubtypeShares()
	var sb strings.Builder
	sb.WriteString("§3 findings and rules (implemented by the five checkers)\n")
	for i, box := range findingBoxes {
		fmt.Fprintf(&sb, "\nFinding %d [%s → checker %q]\n  %s\n",
			i+1, box.Aspect, checkerOf[box.Aspect], wrap(box.Finding, 76, "  "))
		for _, r := range box.Rules {
			fmt.Fprintf(&sb, "  %s\n", wrap(r, 76, "  "))
		}
		for _, s := range shares {
			if s.Category == box.Aspect {
				fmt.Fprintf(&sb, "    %-50s %2.0f%% of the category's bugs\n", s.Subtype, s.Share*100)
			}
		}
	}
	return sb.String()
}

// wrap folds s at width, indenting continuation lines.
func wrap(s string, width int, indent string) string {
	words := strings.Fields(s)
	var sb strings.Builder
	line := 0
	for i, w := range words {
		if line > 0 && line+len(w)+1 > width {
			sb.WriteString("\n" + indent)
			line = 0
		} else if i > 0 {
			sb.WriteString(" ")
			line++
		}
		sb.WriteString(w)
		line += len(w)
	}
	return sb.String()
}
