package eval

import (
	"fmt"
	"strings"

	"pallas/internal/corpus"
)

// RunBigFiles analyzes the three subsystem-scale units (the synthetic
// mm/page_alloc.c, net/ipv4/tcp_input.c and fs/ubifs/file.c) — the closest
// analogue to the paper's per-subsystem merged-unit runs — and renders their
// seeded-defect verdicts.
func RunBigFiles() (string, error) {
	units := []struct {
		title string
		file  string
		get   func() (string, string)
	}{
		{"mm/page_alloc.c (Figure 1a at subsystem scale)", "mm/page_alloc.c", corpus.BigFile},
		{"net/ipv4/tcp_input.c (Figure 1c at subsystem scale)", "net/ipv4/tcp_input.c", corpus.BigFileNet},
		{"fs/ubifs/file.c (Figure 1b at subsystem scale)", "fs/ubifs/file.c", corpus.BigFileFS},
		{"drivers/scsi/mpt3sas_base.c (Figure 8 at subsystem scale)", "drivers/scsi/mpt3sas_base.c", corpus.BigFileDev},
		{"chromium/task_queue_impl.cc (Table 7 WB rows at scale)", "chromium/task_queue_impl.cc", corpus.BigFileWB},
		{"ovs/dpif-netdev.c (Table 7 SDN rows at scale)", "ovs/dpif-netdev.c", corpus.BigFileSDN},
		{"android/binder.c (Table 7 MOB rows at scale)", "android/binder.c", corpus.BigFileMob},
	}
	var sb strings.Builder
	sb.WriteString("subsystem-scale units — seeded deep bugs re-detected\n\n")
	for _, u := range units {
		src, spec := u.get()
		rep, err := analyzeCase(u.file, src, spec)
		if err != nil {
			return "", fmt.Errorf("%s: %w", u.file, err)
		}
		fmt.Fprintf(&sb, "== %s: %d warning(s) ==\n", u.title, len(rep.Warnings))
		for _, w := range rep.Warnings {
			fmt.Fprintf(&sb, "  %s\n", w.String())
			if w.LikelyConsequence != "" {
				fmt.Fprintf(&sb, "    likely consequence (study): %s\n", w.LikelyConsequence)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
