package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pallas/internal/corpus"
)

// TimingResult is the per-fast-path analysis-cost experiment (§5 reports
// "PALLAS took 1-2 minutes to check one fast path on average" on the Clang
// toolchain; this front-end is measured the same way).
type TimingResult struct {
	Cases  int
	Total  time.Duration
	Mean   time.Duration
	Median time.Duration
	Max    time.Duration
	// PerSystem is the mean check time by system.
	PerSystem map[corpus.System]time.Duration
}

// RunTiming measures the full check pipeline per corpus case.
func RunTiming() (*TimingResult, error) {
	reg := corpus.Generate()
	res := &TimingResult{PerSystem: map[corpus.System]time.Duration{}}
	perSystemN := map[corpus.System]int{}
	var samples []time.Duration
	for _, c := range reg.Cases {
		start := time.Now()
		if _, err := analyzeCase(c.File, c.Source, c.Spec); err != nil {
			return nil, fmt.Errorf("case %s: %w", c.ID, err)
		}
		d := time.Since(start)
		samples = append(samples, d)
		res.Total += d
		res.PerSystem[c.System] += d
		perSystemN[c.System]++
		if d > res.Max {
			res.Max = d
		}
	}
	res.Cases = len(samples)
	if res.Cases > 0 {
		res.Mean = res.Total / time.Duration(res.Cases)
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		res.Median = samples[res.Cases/2]
	}
	for s, total := range res.PerSystem {
		res.PerSystem[s] = total / time.Duration(perSystemN[s])
	}
	return res, nil
}

// Render prints the timing experiment.
func (t *TimingResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§5 — analysis cost per fast path (measured)\n")
	fmt.Fprintf(&sb, "  cases: %d   total: %s   mean: %s   median: %s   max: %s\n",
		t.Cases, t.Total.Round(time.Microsecond), t.Mean.Round(time.Microsecond),
		t.Median.Round(time.Microsecond), t.Max.Round(time.Microsecond))
	for _, s := range corpus.Systems() {
		fmt.Fprintf(&sb, "  %-4s mean %s\n", s, t.PerSystem[s].Round(time.Microsecond))
	}
	sb.WriteString("  (paper: 1-2 minutes per fast path on the Clang toolchain over\n")
	sb.WriteString("   subsystem-sized merged units; same pipeline, corpus-sized inputs here)\n")
	return sb.String()
}
