// Package eval drives the paper's experiments: it reruns the five checkers
// over the corpus and regenerates every table and figure of the evaluation
// (Tables 1-8, Figures 1-9). cmd/pallas-eval prints the results; the root
// bench_test.go measures them.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"pallas/internal/checkers"
	"pallas/internal/corpus"
	"pallas/internal/cparse"
	"pallas/internal/inject"
	"pallas/internal/paths"
	"pallas/internal/report"
	"pallas/internal/spec"
	"pallas/internal/study"
)

// analyzeCase runs the full pipeline over one corpus case source.
func analyzeCase(file, source, specText string) (*report.Report, error) {
	tu, err := cparse.Parse(file, source)
	if err != nil {
		return nil, fmt.Errorf("%s: parse: %w", file, err)
	}
	sp, err := spec.Parse(specText)
	if err != nil {
		return nil, fmt.Errorf("%s: spec: %w", file, err)
	}
	ctx, err := checkers.NewContext(tu, sp, paths.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return checkers.Run(ctx), nil
}

// analyzeOneChecker runs the pipeline with a single checker enabled.
func analyzeOneChecker(file, source, specText string, c checkers.Checker) (*report.Report, error) {
	tu, err := cparse.Parse(file, source)
	if err != nil {
		return nil, fmt.Errorf("%s: parse: %w", file, err)
	}
	sp, err := spec.Parse(specText)
	if err != nil {
		return nil, fmt.Errorf("%s: spec: %w", file, err)
	}
	ctx, err := checkers.NewContext(tu, sp, paths.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return checkers.Run(ctx, c), nil
}

// ---------------------------------------------------------------------------
// Table 1 — detection across systems and finding types
// ---------------------------------------------------------------------------

// Table1Cell tallies one (finding, system) cell.
type Table1Cell struct {
	Bugs     int // validated bugs detected
	Warnings int // total warnings (bugs + false positives)
}

// Table1Result is the measured Table 1.
type Table1Result struct {
	// Cells maps finding → system → tally.
	Cells map[string]map[corpus.System]*Table1Cell
	// RowBugs / RowWarnings aggregate per finding.
	RowBugs, RowWarnings map[string]int
	// TotalBugs / TotalWarnings aggregate everything.
	TotalBugs, TotalWarnings int
	// Missed lists cases whose expected warning did not fire (must be empty).
	Missed []string
	// CasesRun counts analyzed fast-path cases.
	CasesRun int
}

// Accuracy is validated bugs over warnings (the paper reports 69%).
func (t *Table1Result) Accuracy() float64 {
	if t.TotalWarnings == 0 {
		return 0
	}
	return float64(t.TotalBugs) / float64(t.TotalWarnings)
}

// RunTable1 analyzes the full corpus with all five checkers.
func RunTable1() (*Table1Result, error) {
	reg := corpus.Generate()
	res := &Table1Result{
		Cells:       map[string]map[corpus.System]*Table1Cell{},
		RowBugs:     map[string]int{},
		RowWarnings: map[string]int{},
	}
	for _, f := range report.AllFindings() {
		res.Cells[f] = map[corpus.System]*Table1Cell{}
		for _, s := range corpus.Systems() {
			res.Cells[f][s] = &Table1Cell{}
		}
	}
	for _, c := range reg.Cases {
		r, err := analyzeCase(c.File, c.Source, c.Spec)
		if err != nil {
			return nil, fmt.Errorf("case %s: %w", c.ID, err)
		}
		res.CasesRun++
		fired := false
		for _, w := range r.Warnings {
			cell := res.Cells[w.Finding][c.System]
			cell.Warnings++
			res.RowWarnings[w.Finding]++
			res.TotalWarnings++
			if w.Finding == c.Finding {
				fired = true
				if c.Kind == corpus.Bug {
					cell.Bugs++
					res.RowBugs[w.Finding]++
					res.TotalBugs++
				}
			}
		}
		if !fired {
			res.Missed = append(res.Missed, c.ID)
		}
	}
	return res, nil
}

// Render prints the measured Table 1 next to the published values.
func (t *Table1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1 — fast-path bugs detected by PALLAS (measured)\n")
	fmt.Fprintf(&sb, "%-52s %4s %4s %4s %4s %4s %4s %4s  %s\n",
		"Bug Finding", "MM", "FS", "NET", "DEV", "WB", "SDN", "MOB", "B/W")
	published := map[string]corpus.Table1Row{}
	for _, row := range corpus.Table1() {
		published[row.Finding] = row
	}
	for _, f := range report.AllFindings() {
		fmt.Fprintf(&sb, "%-52s", report.FindingTitle(f))
		for _, s := range corpus.Systems() {
			fmt.Fprintf(&sb, " %4d", t.Cells[f][s].Bugs)
		}
		pub := published[f]
		fmt.Fprintf(&sb, "  %d/%d (paper %d/%d)\n",
			t.RowBugs[f], t.RowWarnings[f], pub.TotalBugs(), pub.Warnings)
	}
	fmt.Fprintf(&sb, "%-52s", "Total")
	for _, s := range corpus.Systems() {
		n := 0
		for _, f := range report.AllFindings() {
			n += t.Cells[f][s].Bugs
		}
		fmt.Fprintf(&sb, " %4d", n)
	}
	fmt.Fprintf(&sb, "  %d/%d\n", t.TotalBugs, t.TotalWarnings)
	fmt.Fprintf(&sb, "accuracy: %.0f%% (%d validated bugs / %d warnings; paper: 69%%, 155/224)\n",
		t.Accuracy()*100, t.TotalBugs, t.TotalWarnings)
	if len(t.Missed) > 0 {
		fmt.Fprintf(&sb, "MISSED CASES (%d): %s\n", len(t.Missed), strings.Join(t.Missed, ", "))
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Tables 2-4 — the characterization study
// ---------------------------------------------------------------------------

// RenderTable2 computes and renders Table 2 from the study dataset.
func RenderTable2() string {
	rows := study.Table2(study.Dataset())
	var sb strings.Builder
	sb.WriteString("Table 2 — fast path is buggy (measured from the study dataset)\n")
	fmt.Fprintf(&sb, "%-30s", "")
	for _, r := range rows {
		fmt.Fprintf(&sb, " %5s", r.Subsystem)
	}
	sb.WriteString("\n")
	line := func(name string, get func(study.Table2Row) int) {
		fmt.Fprintf(&sb, "%-30s", name)
		for _, r := range rows {
			fmt.Fprintf(&sb, " %5d", get(r))
		}
		sb.WriteString("\n")
	}
	line("Num. of fast paths", func(r study.Table2Row) int { return r.NumPaths })
	line("Num. of bug-fix patches", func(r study.Table2Row) int { return r.NumPatches })
	line("Num. of bugs per path (avg.)", func(r study.Table2Row) int { return r.BugsPerAvg })
	line("Num. of bugs per path (max)", func(r study.Table2Row) int { return r.BugsPerMax })
	line("Fix time (days on average)", func(r study.Table2Row) int { return r.FixDaysAvg })
	return sb.String()
}

// RenderTable3 computes and renders Table 3.
func RenderTable3() string {
	t3 := study.Table3(study.Dataset())
	var sb strings.Builder
	sb.WriteString("Table 3 — distribution of fast-path bugs (measured)\n")
	fmt.Fprintf(&sb, "%-16s", "")
	for _, sub := range study.Subsystems() {
		fmt.Fprintf(&sb, " %10s", sub)
	}
	sb.WriteString("\n")
	names := map[report.Aspect]string{
		report.PathState: "Path state", report.TriggerCondition: "Conditions",
		report.PathOutput: "Path output", report.FaultHandling: "Fault handling",
		report.DataStructure: "Data structures",
	}
	for _, a := range report.Aspects() {
		fmt.Fprintf(&sb, "%-16s", names[a])
		for _, sub := range study.Subsystems() {
			cell := t3[sub][a]
			fmt.Fprintf(&sb, " %3d (%2.0f%%)", cell.Count, cell.Ratio*100)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-16s", "Total bugs")
	for _, sub := range study.Subsystems() {
		n := 0
		for _, a := range report.Aspects() {
			n += t3[sub][a].Count
		}
		fmt.Fprintf(&sb, " %9d", n)
	}
	sb.WriteString("\n")
	return sb.String()
}

// RenderTable4 computes and renders Table 4.
func RenderTable4() string {
	t4 := study.Table4(study.Dataset())
	var sb strings.Builder
	sb.WriteString("Table 4 — consequences of fast-path bugs (measured)\n")
	fmt.Fprintf(&sb, "%-26s", "Consequence")
	for _, a := range report.Aspects() {
		fmt.Fprintf(&sb, " %-12s", shortAspect(a))
	}
	sb.WriteString("\n")
	for _, cons := range study.Consequences() {
		fmt.Fprintf(&sb, "%-26s", cons)
		for _, a := range report.Aspects() {
			cell := t4[a][cons]
			fmt.Fprintf(&sb, " %3d (%2.0f%%)  ", cell.Count, cell.Ratio*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func shortAspect(a report.Aspect) string {
	switch a {
	case report.PathState:
		return "PathState"
	case report.TriggerCondition:
		return "TrigCond"
	case report.PathOutput:
		return "PathOut"
	case report.FaultHandling:
		return "FaultHdl"
	case report.DataStructure:
		return "DataStruct"
	}
	return a.String()
}

// ---------------------------------------------------------------------------
// Table 5 — symbolic extraction example
// ---------------------------------------------------------------------------

// RunTable5 extracts the paths of the Table-5 showcase function and renders
// one path in the paper's Input/Signature/Condition/State/Output layout.
func RunTable5() (string, error) {
	sc := corpus.ShowcaseByID("table5")
	tu, err := cparse.Parse("table5.c", sc.Source)
	if err != nil {
		return "", err
	}
	ex := paths.NewExtractor(tu, paths.DefaultConfig())
	fp, err := ex.Extract(sc.FastFunc)
	if err != nil {
		return "", err
	}
	sp, err := spec.Parse(sc.Spec)
	if err != nil {
		return "", err
	}
	// Pick the longest path (the one that enters the slow-path branch).
	var longest *paths.ExecPath
	for _, p := range fp.Paths {
		if longest == nil || len(p.States)+len(p.Conds) > len(longest.States)+len(longest.Conds) {
			longest = p
		}
	}
	var sb strings.Builder
	sb.WriteString("Table 5 — symbolic extraction of " + sc.FastFunc + " (measured)\n")
	sb.WriteString("Input\n")
	if len(sp.Immutables) > 0 {
		names := make([]string, len(sp.Immutables))
		for i, v := range sp.Immutables {
			names[i] = v.Name
		}
		fmt.Fprintf(&sb, "  @immutable = %s\n", strings.Join(names, ", "))
	}
	for i, cv := range sp.CondVars {
		fmt.Fprintf(&sb, "  @cond%d = %s\n", i, cv.Name)
	}
	fmt.Fprintf(&sb, "Signature\n  %s\n", fp.Signature)
	sb.WriteString("Condition\n")
	for _, c := range longest.Conds {
		fmt.Fprintf(&sb, "  L%-3d %s  [%s]\n", c.Line, c.Sym, c.Outcome)
	}
	sb.WriteString("State\n")
	for _, s := range longest.States {
		fmt.Fprintf(&sb, "  L%-3d %s = %s\n", s.Line, s.Target, s.Value)
	}
	sb.WriteString("Output\n")
	if longest.Out != nil && !longest.Out.Void {
		fmt.Fprintf(&sb, "  L%-3d %s\n", longest.Out.Line, longest.Out.Expr)
	}
	// And the verdict the path-state checker reaches on it.
	rep, err := analyzeCase("table5.c", sc.Source, sc.Spec)
	if err != nil {
		return "", err
	}
	for _, w := range rep.Warnings {
		fmt.Fprintf(&sb, "checker verdict: %s\n", w.String())
	}
	return sb.String(), nil
}

// ---------------------------------------------------------------------------
// Table 6 — software inventory
// ---------------------------------------------------------------------------

// RenderTable6 prints the evaluated-software inventory.
func RenderTable6() string {
	var sb strings.Builder
	sb.WriteString("Table 6 — software systems evaluated\n")
	fmt.Fprintf(&sb, "%-26s %-8s %s\n", "Software", "Version", "Description")
	for _, info := range corpus.Inventory() {
		fmt.Fprintf(&sb, "%-26s %-8s %s\n", info.Software, info.Version, info.Description)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 7 — the 34 new bugs
// ---------------------------------------------------------------------------

// Table7Result lists the Table-7 cases and whether each was re-detected.
type Table7Result struct {
	Rows     []*corpus.Case
	Detected map[string]bool
	// MeanLatentYears is the average latent period over bugs with data.
	MeanLatentYears float64
}

// RunTable7 analyzes the 34 Table-7 cases.
func RunTable7() (*Table7Result, error) {
	reg := corpus.Generate()
	res := &Table7Result{Detected: map[string]bool{}}
	sum, n := 0.0, 0
	for _, c := range reg.Table7Cases() {
		res.Rows = append(res.Rows, c)
		r, err := analyzeCase(c.File, c.Source, c.Spec)
		if err != nil {
			return nil, err
		}
		for _, w := range r.Warnings {
			if w.Finding == c.Finding {
				res.Detected[c.ID] = true
			}
		}
		if c.LatentYears > 0 {
			sum += c.LatentYears
			n++
		}
	}
	if n > 0 {
		res.MeanLatentYears = sum / float64(n)
	}
	return res, nil
}

// Render prints the Table-7 listing.
func (t *Table7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 7 — new bugs discovered by PALLAS (measured)\n")
	fmt.Fprintf(&sb, "%-4s %-42s %-46s %-14s %-7s %s\n",
		"Sys", "File", "Fast path operation", "Consequence", "Years", "Detected")
	for _, c := range t.Rows {
		years := "N/A"
		if c.LatentYears > 0 {
			years = fmt.Sprintf("%.1f", c.LatentYears)
		}
		det := "no"
		if t.Detected[c.ID] {
			det = "yes"
		}
		fmt.Fprintf(&sb, "%-4s %-42s %-46s %-14s %-7s %s\n",
			c.System, c.File, truncate(c.Operation, 46), c.Consequence, years, det)
	}
	fmt.Fprintf(&sb, "detected %d/%d; mean latent period %.1f years (paper: 3.1)\n",
		len(t.Detected), len(t.Rows), t.MeanLatentYears)
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// ---------------------------------------------------------------------------
// Table 8 — completeness
// ---------------------------------------------------------------------------

// Table8Result aggregates the completeness experiment per cause.
type Table8Result struct {
	Rows []Table8MeasuredRow
	// Detected / Total overall.
	Detected, Total int
}

// Table8MeasuredRow is one measured Table-8 row.
type Table8MeasuredRow struct {
	Source   string
	Cause    string
	Detected int
	Total    int
	Expected int
}

// RunTable8 injects the 62 known bugs and measures re-detection.
func RunTable8() (*Table8Result, error) {
	injs := inject.Generate()
	byCause := map[string][]*inject.Injection{}
	for _, inj := range injs {
		byCause[inj.Cause] = append(byCause[inj.Cause], inj)
	}
	res := &Table8Result{}
	for _, plan := range inject.Plan() {
		row := Table8MeasuredRow{Source: plan.Source, Cause: plan.Cause,
			Total: plan.Total, Expected: plan.Expected}
		for _, inj := range byCause[plan.Cause] {
			r, err := analyzeCase(inj.ID+".c", inj.Source, inj.Spec)
			if err != nil {
				return nil, err
			}
			for _, w := range r.Warnings {
				if w.Finding == inj.Finding {
					row.Detected++
					break
				}
			}
		}
		res.Rows = append(res.Rows, row)
		res.Detected += row.Detected
		res.Total += row.Total
	}
	return res, nil
}

// Render prints the measured Table 8.
func (t *Table8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 8 — completeness of PALLAS (measured)\n")
	fmt.Fprintf(&sb, "%-26s %-38s %s\n", "Bug Source", "Bug Causes", "D/T")
	for _, r := range t.Rows {
		mark := ""
		if r.Detected < r.Total {
			mark = " *"
		}
		fmt.Fprintf(&sb, "%-26s %-38s %d/%d%s\n", r.Source, r.Cause, r.Detected, r.Total, mark)
	}
	fmt.Fprintf(&sb, "overall: %d/%d re-detected (paper: 61/62; * = semantic exception needing runtime data)\n",
		t.Detected, t.Total)
	return sb.String()
}

// ---------------------------------------------------------------------------
// §5.3 — false positives
// ---------------------------------------------------------------------------

// FPBreakdown tallies false positives per §5.3 source.
type FPBreakdown struct {
	BySource map[string]int
	Total    int
	Warnings int
}

// RunFP analyzes the trap cases and attributes each to its FP source.
func RunFP() (*FPBreakdown, error) {
	reg := corpus.Generate()
	res := &FPBreakdown{BySource: map[string]int{}}
	for _, c := range reg.Cases {
		r, err := analyzeCase(c.File, c.Source, c.Spec)
		if err != nil {
			return nil, err
		}
		res.Warnings += len(r.Warnings)
		if c.Kind == corpus.Trap && len(r.Warnings) > 0 {
			res.BySource[c.FPSource]++
			res.Total++
		}
	}
	return res, nil
}

// Render prints the FP breakdown.
func (f *FPBreakdown) Render() string {
	var sb strings.Builder
	sb.WriteString("§5.3 — false-positive sources (measured)\n")
	keys := make([]string, 0, len(f.BySource))
	for k := range f.BySource {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %3d  %s\n", f.BySource[k], k)
	}
	fmt.Fprintf(&sb, "total false positives: %d of %d warnings (%.0f%%; paper: 31%%)\n",
		f.Total, f.Warnings, float64(f.Total)/float64(f.Warnings)*100)
	return sb.String()
}
