package eval

import (
	"fmt"
	"strings"

	"pallas/internal/cfg"
	"pallas/internal/corpus"
	"pallas/internal/cparse"
	"pallas/internal/spec"
)

// RunFigure reproduces one paper figure:
//
//	1   — the three motivating workflows (page allocation, UBIFS write,
//	      TCP receive) rendered as ASCII workflows with fast/slow paths.
//	2   — the key-element model (Sin/Ct/Cfau/Sout/Serr) instantiated on the
//	      three workflows.
//	3-9 — the concrete bug walkthroughs: the workflow, the seeded defect, and
//	      the checker's verdict.
func RunFigure(n int) (string, error) {
	switch n {
	case 1:
		return figure1()
	case 2:
		return figure2()
	case 3, 4, 5, 6, 7, 8, 9:
		return figureBug(fmt.Sprintf("fig%d", n))
	}
	return "", fmt.Errorf("eval: no figure %d (have 1-9)", n)
}

func showcaseGraph(sc *corpus.Showcase, fn string) (*cfg.Graph, error) {
	tu, err := cparse.Parse(sc.ID+".c", sc.Source)
	if err != nil {
		return nil, err
	}
	f := tu.Func(fn)
	if f == nil {
		return nil, fmt.Errorf("eval: %s: no function %q", sc.ID, fn)
	}
	return cfg.Build(f)
}

func figure1() (string, error) {
	var sb strings.Builder
	sb.WriteString("Figure 1 — examples of fast path (measured workflows)\n\n")
	for _, id := range []string{"fig1a", "fig1b", "fig1c"} {
		sc := corpus.ShowcaseByID(id)
		fmt.Fprintf(&sb, "(%s) %s\n", strings.TrimPrefix(id, "fig1"), sc.Title)
		for _, fn := range []string{sc.FastFunc, sc.SlowFunc} {
			if fn == "" {
				continue
			}
			g, err := showcaseGraph(sc, fn)
			if err != nil {
				return "", err
			}
			kind := "fast path"
			if fn == sc.SlowFunc {
				kind = "slow path"
			}
			fmt.Fprintf(&sb, "--- %s: %s ---\n%s\n", kind, fn, cfg.RenderWorkflow(g))
		}
	}
	return sb.String(), nil
}

func figure2() (string, error) {
	var sb strings.Builder
	sb.WriteString("Figure 2 — the key elements of a fast path (measured)\n")
	sb.WriteString("model: Sin → [Ct?] → fast path Sf | slow path S0 → [Cfau?] → fault handling → [Cerr?] → Sout/Serr/Sfau\n\n")
	for _, id := range []string{"fig1a", "fig1b", "fig1c"} {
		sc := corpus.ShowcaseByID(id)
		g, err := showcaseGraph(sc, sc.FastFunc)
		if err != nil {
			return "", err
		}
		sp, err := spec.Parse(sc.Spec)
		if err != nil {
			return "", err
		}
		var faults []string
		for _, f := range sp.Faults {
			faults = append(faults, f.State)
		}
		var condVars []string
		for _, v := range sp.CondVars {
			condVars = append(condVars, v.Name)
		}
		sb.WriteString(cfg.RenderKeyElements(g, condVars, faults))
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

func figureBug(id string) (string, error) {
	sc := corpus.ShowcaseByID(id)
	if sc == nil {
		return "", fmt.Errorf("eval: no showcase %q", id)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (measured)\n\n", sc.Title)
	g, err := showcaseGraph(sc, sc.FastFunc)
	if err != nil {
		return "", err
	}
	sb.WriteString(cfg.RenderWorkflow(g))
	sb.WriteString("\n")
	rep, err := analyzeCase(sc.ID+".c", sc.Source, sc.Spec)
	if err != nil {
		return "", err
	}
	if len(rep.Warnings) == 0 {
		sb.WriteString("checker verdict: NO WARNING (unexpected)\n")
	}
	for _, w := range rep.Warnings {
		fmt.Fprintf(&sb, "checker verdict: %s\n", w.String())
	}
	return sb.String(), nil
}
