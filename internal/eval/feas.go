package eval

// Feasibility-pruning experiment: run the seeded infeasible-path corpus
// (corpus.FeasCases) under each precision tier and measure what the
// constraint layer buys — paths discarded before checking, and false
// positives silenced — against the fast tier's structural walk.

import (
	"fmt"
	"strings"

	"pallas/internal/checkers"
	"pallas/internal/corpus"
	"pallas/internal/cparse"
	"pallas/internal/feas"
	"pallas/internal/paths"
	"pallas/internal/spec"
)

// FeasTierResult summarizes one precision tier over the feasibility corpus.
type FeasTierResult struct {
	// Tier names the precision tier ("fast", "balanced", "strict").
	Tier string
	// PathsChecked counts the paths that survived extraction and reached
	// the checkers, across all cases.
	PathsChecked int
	// Pruned counts path continuations the feasibility layer discarded.
	Pruned int
	// Contradictions counts the contradictory branch-condition
	// accumulations detected during the walks.
	Contradictions int64
	// Warnings counts reported warnings across all cases.
	Warnings int
	// FalsePositives lists the case IDs whose seeded false positive fired
	// under this tier (the fast tier fires every one by construction).
	FalsePositives []string
}

// FeasResult is the measured pruning experiment.
type FeasResult struct {
	// Cases counts the feasibility corpus cases analyzed per tier.
	Cases int
	// Tiers holds one row per precision tier, fast first.
	Tiers []FeasTierResult
}

// RunFeas analyzes every feasibility case under every precision tier.
func RunFeas() (*FeasResult, error) {
	cases := corpus.FeasCases()
	res := &FeasResult{Cases: len(cases)}
	for _, tier := range []feas.Tier{feas.Fast, feas.Balanced, feas.Strict} {
		row := FeasTierResult{Tier: tier.String()}
		for _, c := range cases {
			tu, err := cparse.Parse(c.ID, c.Source)
			if err != nil {
				return nil, fmt.Errorf("%s: parse: %w", c.ID, err)
			}
			sp, err := spec.Parse(c.Spec)
			if err != nil {
				return nil, fmt.Errorf("%s: spec: %w", c.ID, err)
			}
			pcfg := paths.DefaultConfig()
			pcfg.Precision = tier
			ctx, err := checkers.NewContext(tu, sp, pcfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.ID, err)
			}
			rep := checkers.Run(ctx)
			for _, fp := range ctx.FuncPaths {
				row.PathsChecked += len(fp.Paths)
			}
			fstats := ctx.Extractor.FeasStats()
			row.Pruned += rep.PathsPruned
			row.Contradictions += fstats.Contradictions
			row.Warnings += len(rep.Warnings)
			for _, w := range rep.Warnings {
				if w.Finding == c.Finding {
					row.FalsePositives = append(row.FalsePositives, c.ID)
					break
				}
			}
		}
		res.Tiers = append(res.Tiers, row)
	}
	return res, nil
}

// Render formats the experiment as a fixed-width table.
func (r *FeasResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Feasibility pruning — %d seeded infeasible-path case(s) per tier (§5.3 FP source)\n", r.Cases)
	sb.WriteString("tier      paths-checked  pruned  contradictions  warnings  seeded-FPs-fired\n")
	sb.WriteString("--------  -------------  ------  --------------  --------  ----------------\n")
	for _, row := range r.Tiers {
		fired := "-"
		if len(row.FalsePositives) > 0 {
			fired = strings.Join(row.FalsePositives, ",")
		}
		fmt.Fprintf(&sb, "%-8s  %13d  %6d  %14d  %8d  %s\n",
			row.Tier, row.PathsChecked, row.Pruned, row.Contradictions, row.Warnings, fired)
	}
	return sb.String()
}
