package eval

import (
	"strings"
	"testing"
)

// TestParallelMatchesSerial asserts the parallel Table-1 run produces the
// same aggregate as the serial one.
func TestParallelMatchesSerial(t *testing.T) {
	serial, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		par, err := RunTable1Parallel(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.TotalBugs != serial.TotalBugs || par.TotalWarnings != serial.TotalWarnings {
			t.Errorf("workers=%d: %d/%d, serial %d/%d", workers,
				par.TotalBugs, par.TotalWarnings, serial.TotalBugs, serial.TotalWarnings)
		}
		if len(par.Missed) != len(serial.Missed) {
			t.Errorf("workers=%d: missed %v vs %v", workers, par.Missed, serial.Missed)
		}
		for f, n := range serial.RowBugs {
			if par.RowBugs[f] != n {
				t.Errorf("workers=%d: row %s = %d, want %d", workers, f, par.RowBugs[f], n)
			}
		}
	}
}

// TestAblationDecomposesTable1 checks the per-checker contributions sum to
// the full result: the five checkers are responsible for disjoint findings.
func TestAblationDecomposesTable1(t *testing.T) {
	abl, err := RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Rows) != 5 {
		t.Fatalf("rows = %d", len(abl.Rows))
	}
	wantBugs := map[string]int{
		"path-state":        10 + 10 + 9,
		"trigger-condition": 19 + 14 + 8,
		"path-output":       12 + 12 + 11,
		"fault-handling":    27,
		"data-struct":       15 + 8,
	}
	totalB, totalW := 0, 0
	for _, r := range abl.Rows {
		if r.Bugs != wantBugs[r.Checker] {
			t.Errorf("%s: %d bugs, want %d", r.Checker, r.Bugs, wantBugs[r.Checker])
		}
		totalB += r.Bugs
		totalW += r.Warnings
	}
	if totalB != 155 {
		t.Errorf("ablation bugs sum = %d, want 155", totalB)
	}
	if totalW != 224 {
		t.Errorf("ablation warnings sum = %d, want 224", totalW)
	}
	if !strings.Contains(abl.Render(), "path-state") {
		t.Error("render missing checker names")
	}
}
