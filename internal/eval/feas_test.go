package eval

import "testing"

// tierRow indexes a RunFeas result by tier name.
func tierRow(t *testing.T, res *FeasResult, tier string) FeasTierResult {
	t.Helper()
	for _, row := range res.Tiers {
		if row.Tier == tier {
			return row
		}
	}
	t.Fatalf("no %q tier in result", tier)
	return FeasTierResult{}
}

// TestRunFeas pins the pruning experiment's shape: every seeded false
// positive fires on the fast tier, balanced silences the single-variable
// cases, and strict silences the cross-term case too — each by pruning the
// infeasible path, never by weakening a checker.
func TestRunFeas(t *testing.T) {
	res, err := RunFeas()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 3 {
		t.Fatalf("cases = %d, want 3", res.Cases)
	}

	fast := tierRow(t, res, "fast")
	if len(fast.FalsePositives) != res.Cases {
		t.Errorf("fast tier fired %d/%d seeded FPs: %v", len(fast.FalsePositives), res.Cases, fast.FalsePositives)
	}
	if fast.Pruned != 0 || fast.Contradictions != 0 {
		t.Errorf("fast tier must not prune: pruned=%d contradictions=%d", fast.Pruned, fast.Contradictions)
	}

	bal := tierRow(t, res, "balanced")
	if bal.Pruned < 2 {
		t.Errorf("balanced pruned %d path(s), want >= 2", bal.Pruned)
	}
	if len(bal.FalsePositives) != 1 || bal.FalsePositives[0] != "feas/cross-term/0" {
		t.Errorf("balanced FPs = %v, want only feas/cross-term/0", bal.FalsePositives)
	}

	strict := tierRow(t, res, "strict")
	if strict.Pruned < 3 {
		t.Errorf("strict pruned %d path(s), want >= 3", strict.Pruned)
	}
	if len(strict.FalsePositives) != 0 {
		t.Errorf("strict FPs = %v, want none", strict.FalsePositives)
	}

	if !(fast.PathsChecked > bal.PathsChecked && bal.PathsChecked > strict.PathsChecked) {
		t.Errorf("paths checked must shrink with precision: fast=%d balanced=%d strict=%d",
			fast.PathsChecked, bal.PathsChecked, strict.PathsChecked)
	}
	if fast.Warnings <= strict.Warnings {
		t.Errorf("pruning must remove warnings: fast=%d strict=%d", fast.Warnings, strict.Warnings)
	}
}
