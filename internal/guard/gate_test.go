package guard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateAcquireRelease covers the explicit slot API the admission layer
// builds on: acquire up to cap, block past it, release to unblock.
func TestGateAcquireRelease(t *testing.T) {
	g := NewGate(2)
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if g.InFlight() != 2 {
		t.Fatalf("in-flight = %d, want 2", g.InFlight())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full-gate acquire = %v, want deadline exceeded", err)
	}
	g.Release()
	if err := g.Acquire(nil); err != nil {
		t.Fatalf("post-release acquire = %v", err)
	}
	g.Release()
	g.Release()
	if g.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain, want 0", g.InFlight())
	}
}

// TestGateContentionWithConcurrentDrain is the satellite's race test: many
// goroutines hammer Acquire/Release (plus Do, plus canceled contexts) while
// a drain fires mid-run. Under -race it must hold the two invariants the
// admission layer depends on: InFlight never goes negative (sampled
// continuously by a watcher goroutine), and Drain always completes with no
// work left in flight.
func TestGateContentionWithConcurrentDrain(t *testing.T) {
	const workers, goroutines, iters = 3, 32, 200
	g := NewGate(workers)

	var negative atomic.Bool
	var peak atomic.Int64
	stopWatch := make(chan struct{})
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			n := g.InFlight()
			if n < 0 {
				negative.Store(true)
			}
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
		}
	}()

	var admitted, refused atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case w%4 == 0:
					// Exercise the Do path under the same churn.
					err := g.Do(StageServe, "hammer.c", func() error { return nil })
					if err == nil {
						admitted.Add(1)
					} else if errors.Is(err, ErrGateDraining) {
						refused.Add(1)
						return
					}
				case w%7 == 0 && i%3 == 0:
					// Pre-canceled context: must never leak a slot.
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					if err := g.Acquire(ctx); err == nil {
						g.Release()
						admitted.Add(1)
					}
				default:
					err := g.Acquire(context.Background())
					if errors.Is(err, ErrGateDraining) {
						refused.Add(1)
						return
					}
					if err != nil {
						continue
					}
					admitted.Add(1)
					g.Release()
				}
			}
		}(w)
	}

	// Fire the drain mid-churn from its own goroutine (plus a second
	// concurrent Drain call: it must be idempotent and also complete).
	time.Sleep(2 * time.Millisecond)
	drainErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			drainErr <- g.Drain(ctx)
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-drainErr; err != nil {
			t.Fatalf("drain did not complete: %v", err)
		}
	}
	if n := g.InFlight(); n != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", n)
	}
	if !g.Draining() {
		t.Fatal("Draining() must report true after Drain")
	}
	if err := g.Acquire(nil); !errors.Is(err, ErrGateDraining) {
		t.Fatalf("post-drain acquire = %v, want ErrGateDraining", err)
	}
	if err := g.Do(StageServe, "late.c", func() error { return nil }); !errors.Is(err, ErrGateDraining) {
		t.Fatalf("post-drain Do = %v, want ErrGateDraining", err)
	}

	wg.Wait()
	close(stopWatch)
	<-watcher
	if negative.Load() {
		t.Fatal("InFlight went negative under contention")
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak in-flight = %d, want <= %d", p, workers)
	}
	if admitted.Load() == 0 || refused.Load() == 0 {
		t.Fatalf("test did not exercise both outcomes: admitted=%d refused=%d",
			admitted.Load(), refused.Load())
	}
}

// TestGateDrainWaitsForInFlight parks a slow unit, drains, and asserts the
// drain returns only after the unit released its slot.
func TestGateDrainWaitsForInFlight(t *testing.T) {
	g := NewGate(1)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g.Do(StageServe, "slow.c", func() error {
			<-release
			return nil
		})
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unit never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- g.Drain(nil) }()
	select {
	case <-drained:
		t.Fatal("drain returned while a unit was in flight")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	<-done

	// A bounded-context drain on a wedged gate must give up, not hang.
	g2 := NewGate(1)
	g2.Acquire(nil) // never released
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g2.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged drain = %v, want deadline exceeded", err)
	}
}

// TestGateDoContextCanceledWhileQueued proves an abandoned caller stops
// waiting for a slot: with the gate full, DoContext under a canceled context
// returns the context error promptly, never runs fn, and leaves the gate's
// accounting untouched.
func TestGateDoContextCanceledWhileQueued(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	defer g.Release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ran := atomic.Bool{}
	go func() {
		done <- g.DoContext(ctx, StageServe, "abandoned.c", func() error {
			ran.Store(true)
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the goroutine block on the full gate
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DoContext = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DoContext did not unblock on cancellation")
	}
	if ran.Load() {
		t.Fatal("fn ran despite canceled acquisition")
	}
	if g.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1 (only the test's own slot)", g.InFlight())
	}
}
