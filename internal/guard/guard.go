// Package guard is the resilience layer of the Pallas pipeline. The paper's
// toolchain analyzes large, messy corpora in bulk (Linux 4.6, Chromium 54,
// Android 6.0, OVS 2.5); at that scale one malformed translation unit,
// pathological macro expansion, or path-explosion blowup must not abort or
// stall a whole run. guard provides the three primitives the rest of the
// system builds on:
//
//   - Diagnostic: the structured record every degraded or failed unit
//     produces instead of an untyped error or a process death;
//   - Budget: per-unit resource limits (wall-clock deadline, path-walk
//     steps, macro expansions) checked cheaply from the hot loops;
//   - Protect / Pool: panic isolation for one pipeline stage and a bounded
//     worker pool with per-item fault isolation for batch runs.
//
// The invariant the package enforces: every input yields either a result or
// a Diagnostic, within a bounded time and memory budget.
package guard

import (
	"fmt"
	"runtime/debug"
)

// Stage names the pipeline stage a diagnostic originated in.
type Stage string

// The pipeline stages, in execution order.
const (
	StagePreprocess Stage = "preprocess"
	StageParse      Stage = "parse"
	StageSpec       Stage = "spec"
	StageExtract    Stage = "extract"
	StageCheck      Stage = "check"
	StageBatch      Stage = "batch"
	// StageStore covers persistence: path-database saves/loads and the
	// checkpoint journal.
	StageStore Stage = "store"
	// StageServe covers request handling in the analysis server.
	StageServe Stage = "serve"
)

// Diagnostic is a structured record of a failure or degradation in one
// analysis unit. It is the "result" a unit produces when it cannot produce a
// report: batch runs collect diagnostics instead of dying, and degraded
// single-unit runs attach them next to their partial report.
type Diagnostic struct {
	// Stage is the pipeline stage that failed or degraded.
	Stage Stage `json:"stage"`
	// Unit names the analysis unit (file or corpus case).
	Unit string `json:"unit"`
	// Err is the failure rendered as text.
	Err string `json:"error"`
	// Partial reports whether partial results were still produced (degraded
	// analysis) as opposed to the unit being dropped entirely.
	Partial bool `json:"partial,omitempty"`
}

// String renders the diagnostic in compiler style.
func (d Diagnostic) String() string {
	kind := "error"
	if d.Partial {
		kind = "degraded"
	}
	return fmt.Sprintf("%s: %s[%s]: %s", d.Unit, kind, d.Stage, d.Err)
}

// Error implements the error interface with the same one-line rendering as
// String, so a Diagnostic can travel as an error value and callers printing
// either form get the readable "unit: kind[stage]: message" line instead of
// a struct dump.
func (d Diagnostic) Error() string { return d.String() }

// Diag builds a diagnostic from an error.
func Diag(stage Stage, unit string, err error, partial bool) Diagnostic {
	return Diagnostic{Stage: stage, Unit: unit, Err: err.Error(), Partial: partial}
}

// PanicError is a recovered panic converted into an ordinary error, carrying
// the stage and unit it happened in plus the goroutine stack at panic time.
type PanicError struct {
	Stage Stage
	Unit  string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s of %s: %v", e.Stage, e.Unit, e.Value)
}

// Protect runs fn and converts a panic into a *PanicError, so a crash in any
// pipeline stage (lexer, preprocessor, parser, CFG, paths, checkers) becomes
// a structured per-unit failure instead of killing the process.
func Protect(stage Stage, unit string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Stage: stage, Unit: unit, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
