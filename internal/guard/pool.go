package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool runs fn(i) for every i in [0, n) on a bounded worker pool and returns
// the per-item errors at their item's index (nil for items that succeeded).
// Each invocation is panic-isolated: a panicking item yields a *PanicError
// at its slot while every other item still runs. workers <= 0 means
// GOMAXPROCS. Results are positional, so callers get deterministic output
// regardless of scheduling — this is the pool under both
// Analyzer.AnalyzeMany and the eval harness's parallel table runs.
func Pool(n, workers int, fn func(i int) error) []error {
	return PoolNamed(StageBatch, n, workers, func(i int) string {
		return fmt.Sprintf("item %d", i)
	}, fn)
}

// PoolNamed is Pool with a caller-supplied stage and per-item unit names, so
// a recovered panic identifies the real work item ("extract of get_page")
// instead of a positional "item 3". It is the fan-out primitive under the
// intra-unit analysis pipeline: per-function path extraction and the checker
// sweep both run on it, with workers = 1 reproducing the serial order
// exactly (a single worker drains indices in submission order).
func PoolNamed(stage Stage, n, workers int, name func(i int) string, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = Protect(stage, name(i), func() error {
					return fn(i)
				})
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return errs
}

// ErrGateDraining is returned by Gate.Acquire (and Gate.Do) once
// Gate.Drain has been called: the gate admits no further work while it
// waits for in-flight units to finish.
var ErrGateDraining = errors.New("guard: gate draining")

// Gate is the long-lived admission pool behind the analysis server: where
// Pool runs a known batch to completion, a Gate bounds how many units of
// work from an open-ended request stream run concurrently. Each admitted
// unit runs under the same panic isolation as Pool items, so a hostile
// request can slow its own slot but never take down the process or starve
// the gate. The zero Gate is not usable; call NewGate.
type Gate struct {
	sem       chan struct{}
	inflight  atomic.Int64
	drainCh   chan struct{} // closed by Drain; gates new admissions
	drainOnce sync.Once
}

// NewGate returns a gate admitting at most workers concurrent units;
// workers <= 0 means GOMAXPROCS.
func NewGate(workers int) *Gate {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Gate{sem: make(chan struct{}, workers), drainCh: make(chan struct{})}
}

// Acquire blocks until a slot frees, the context is done, or the gate
// starts draining. On nil return the caller holds a slot and must call
// Release exactly once. nil ctx means context.Background().
func (g *Gate) Acquire(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-g.drainCh:
		return ErrGateDraining
	default:
	}
	select {
	case g.sem <- struct{}{}:
		// Count the slot before re-checking the drain flag: either this
		// acquirer sees the drain and backs out, or Drain's quiescence poll
		// sees the raised in-flight count and waits — never both missing.
		g.inflight.Add(1)
		select {
		case <-g.drainCh:
			g.inflight.Add(-1)
			<-g.sem
			return ErrGateDraining
		default:
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-g.drainCh:
		return ErrGateDraining
	}
}

// Release returns a slot taken by a successful Acquire.
func (g *Gate) Release() {
	g.inflight.Add(-1)
	<-g.sem
}

// Do blocks until a slot frees, then runs fn panic-isolated (a panic
// surfaces as a *PanicError, as with Protect). The slot is released when fn
// returns. Returns ErrGateDraining without running fn once Drain started.
func (g *Gate) Do(stage Stage, unit string, fn func() error) error {
	return g.DoContext(nil, stage, unit, fn)
}

// DoContext is Do with a cancelable acquisition: a caller abandoned while
// waiting for a slot (client disconnect, request deadline) unblocks with the
// context's error instead of occupying the queue until a slot frees for work
// nobody wants anymore. Once fn is running, cancellation no longer
// interrupts it — the unit's own analysis budget bounds the slot hold time.
// nil ctx means context.Background().
func (g *Gate) DoContext(ctx context.Context, stage Stage, unit string, fn func() error) error {
	if err := g.Acquire(ctx); err != nil {
		return err
	}
	defer g.Release()
	return Protect(stage, unit, fn)
}

// Drain stops all further admissions (Acquire and Do return
// ErrGateDraining) and blocks until every in-flight unit has released its
// slot or ctx is done. Safe to call multiple times and concurrently; every
// call waits for quiescence. nil ctx means context.Background().
func (g *Gate) Drain(ctx context.Context) error {
	g.drainOnce.Do(func() { close(g.drainCh) })
	if ctx == nil {
		ctx = context.Background()
	}
	for g.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(500 * time.Microsecond):
		}
	}
	return nil
}

// Draining reports whether Drain has been called.
func (g *Gate) Draining() bool {
	select {
	case <-g.drainCh:
		return true
	default:
		return false
	}
}

// InFlight returns the number of units currently admitted.
func (g *Gate) InFlight() int64 { return g.inflight.Load() }

// Cap returns the gate's concurrency bound.
func (g *Gate) Cap() int { return cap(g.sem) }
