package guard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs fn(i) for every i in [0, n) on a bounded worker pool and returns
// the per-item errors at their item's index (nil for items that succeeded).
// Each invocation is panic-isolated: a panicking item yields a *PanicError
// at its slot while every other item still runs. workers <= 0 means
// GOMAXPROCS. Results are positional, so callers get deterministic output
// regardless of scheduling — this is the pool under both
// Analyzer.AnalyzeMany and the eval harness's parallel table runs.
func Pool(n, workers int, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = Protect(StageBatch, fmt.Sprintf("item %d", i), func() error {
					return fn(i)
				})
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return errs
}

// Gate is the long-lived admission pool behind the analysis server: where
// Pool runs a known batch to completion, a Gate bounds how many units of
// work from an open-ended request stream run concurrently. Each admitted
// unit runs under the same panic isolation as Pool items, so a hostile
// request can slow its own slot but never take down the process or starve
// the gate. The zero Gate is not usable; call NewGate.
type Gate struct {
	sem      chan struct{}
	inflight atomic.Int64
}

// NewGate returns a gate admitting at most workers concurrent units;
// workers <= 0 means GOMAXPROCS.
func NewGate(workers int) *Gate {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Gate{sem: make(chan struct{}, workers)}
}

// Do blocks until a slot frees, then runs fn panic-isolated (a panic
// surfaces as a *PanicError, as with Protect). The slot is released when fn
// returns.
func (g *Gate) Do(stage Stage, unit string, fn func() error) error {
	g.sem <- struct{}{}
	g.inflight.Add(1)
	defer func() {
		g.inflight.Add(-1)
		<-g.sem
	}()
	return Protect(stage, unit, fn)
}

// InFlight returns the number of units currently admitted.
func (g *Gate) InFlight() int64 { return g.inflight.Load() }

// Cap returns the gate's concurrency bound.
func (g *Gate) Cap() int { return cap(g.sem) }
