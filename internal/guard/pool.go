package guard

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool runs fn(i) for every i in [0, n) on a bounded worker pool and returns
// the per-item errors at their item's index (nil for items that succeeded).
// Each invocation is panic-isolated: a panicking item yields a *PanicError
// at its slot while every other item still runs. workers <= 0 means
// GOMAXPROCS. Results are positional, so callers get deterministic output
// regardless of scheduling — this is the pool under both
// Analyzer.AnalyzeMany and the eval harness's parallel table runs.
func Pool(n, workers int, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = Protect(StageBatch, fmt.Sprintf("item %d", i), func() error {
					return fn(i)
				})
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return errs
}
