package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProtectConvertsPanic(t *testing.T) {
	err := Protect(StageParse, "bad.c", func() error {
		panic("index out of range")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Stage != StageParse || pe.Unit != "bad.c" {
		t.Errorf("stage/unit = %s/%s", pe.Stage, pe.Unit)
	}
	if !strings.Contains(pe.Error(), "index out of range") {
		t.Errorf("message: %s", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
}

func TestProtectPassesThroughErrors(t *testing.T) {
	want := errors.New("plain failure")
	if err := Protect(StageCheck, "u", func() error { return want }); err != want {
		t.Errorf("got %v", err)
	}
	if err := Protect(StageCheck, "u", func() error { return nil }); err != nil {
		t.Errorf("got %v", err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diag(StageExtract, "mm/page_alloc.c", errors.New("boom"), true)
	s := d.String()
	for _, want := range []string{"mm/page_alloc.c", "degraded", "extract", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic %q missing %q", s, want)
		}
	}
	if fatal := Diag(StageParse, "u", errors.New("x"), false).String(); !strings.Contains(fatal, "error[") {
		t.Errorf("non-partial diagnostic should render as error: %q", fatal)
	}
}

func TestBudgetNilIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 1000; i++ {
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
		if err := b.MacroExpand(); err != nil {
			t.Fatal(err)
		}
	}
	if b.Err() != nil || b.Steps() != 0 || b.MacroExpansions() != 0 {
		t.Error("nil budget must be inert")
	}
}

func TestBudgetStepLimit(t *testing.T) {
	b := NewBudget(nil, Limits{MaxSteps: 10})
	var last error
	for i := 0; i < 20; i++ {
		last = b.Step()
	}
	if !errors.Is(last, ErrSteps) {
		t.Fatalf("want ErrSteps, got %v", last)
	}
	if !IsBudget(last) {
		t.Error("ErrSteps must classify as a budget violation")
	}
}

func TestBudgetMacroLimit(t *testing.T) {
	b := NewBudget(nil, Limits{MaxMacroExpansions: 5})
	var last error
	for i := 0; i < 10; i++ {
		last = b.MacroExpand()
	}
	if !errors.Is(last, ErrMacroBudget) {
		t.Fatalf("want ErrMacroBudget, got %v", last)
	}
}

func TestBudgetDeadline(t *testing.T) {
	b := NewBudget(nil, Limits{Deadline: 10 * time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := b.Step(); err != nil {
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("want ErrDeadline, got %v", err)
			}
			return
		}
	}
	t.Fatal("deadline never enforced")
}

func TestBudgetContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBudget(ctx, Limits{})
	cancel()
	var last error
	for i := 0; i < 2*(timeCheckMask+1); i++ {
		last = b.Step()
	}
	if !errors.Is(last, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", last)
	}
}

func TestBudgetContextDeadlineMerged(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	b := NewBudget(ctx, Limits{Deadline: time.Hour})
	if !b.hasDeadline || time.Until(b.deadline) > time.Minute {
		t.Error("tighter context deadline must win over the limit")
	}
}

func TestBudgetFirstViolationWins(t *testing.T) {
	b := NewBudget(nil, Limits{MaxSteps: 1, MaxMacroExpansions: 1})
	b.Step()
	b.Step() // trips steps
	b.MacroExpand()
	b.MacroExpand() // would trip macros, but steps came first
	if !errors.Is(b.Err(), ErrSteps) {
		t.Errorf("first violation must stick, got %v", b.Err())
	}
}

// TestBudgetConcurrentUse hammers one budget from many goroutines; run under
// -race this asserts the counters and violation latch are race-free.
func TestBudgetConcurrentUse(t *testing.T) {
	b := NewBudget(nil, Limits{MaxSteps: 5000, MaxMacroExpansions: 5000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b.Step()
				b.MacroExpand()
				b.Err()
			}
		}()
	}
	wg.Wait()
	if b.Steps() != 16000 || b.MacroExpansions() != 16000 {
		t.Errorf("lost updates: steps=%d macros=%d", b.Steps(), b.MacroExpansions())
	}
	if !errors.Is(b.Err(), ErrSteps) && !errors.Is(b.Err(), ErrMacroBudget) {
		t.Errorf("violation not latched: %v", b.Err())
	}
}

func TestPoolRunsEveryItem(t *testing.T) {
	n := 100
	out := make([]int, n)
	errs := Pool(n, 4, func(i int) error {
		out[i] = i * i
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if out[i] != i*i {
			t.Fatalf("item %d not run", i)
		}
	}
}

func TestPoolIsolatesPanicsAndErrors(t *testing.T) {
	errs := Pool(5, 2, func(i int) error {
		switch i {
		case 1:
			panic("boom")
		case 3:
			return fmt.Errorf("soft failure")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Errorf("item 1: want *PanicError, got %v", errs[1])
	}
	if errs[3] == nil || !strings.Contains(errs[3].Error(), "soft failure") {
		t.Errorf("item 3: %v", errs[3])
	}
	for _, i := range []int{0, 2, 4} {
		if errs[i] != nil {
			t.Errorf("item %d must survive neighbours failing: %v", i, errs[i])
		}
	}
}

func TestPoolEdgeCases(t *testing.T) {
	if errs := Pool(0, 4, func(int) error { return nil }); errs != nil {
		t.Error("n=0 must return nil")
	}
	// workers <= 0 and workers > n both normalize.
	ran := 0
	var mu sync.Mutex
	errs := Pool(3, -1, func(i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	})
	if len(errs) != 3 || ran != 3 {
		t.Errorf("ran=%d errs=%d", ran, len(errs))
	}
}

// TestPoolConcurrentWrites asserts under -race that positional result slots
// are a safe communication pattern (each worker writes distinct indices).
func TestPoolConcurrentWrites(t *testing.T) {
	n := 500
	vals := make([]string, n)
	Pool(n, 16, func(i int) error {
		vals[i] = fmt.Sprintf("v%d", i)
		return nil
	})
	for i, v := range vals {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("slot %d = %q", i, v)
		}
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	g := NewGate(3)
	if g.Cap() != 3 {
		t.Fatalf("cap = %d, want 3", g.Cap())
	}
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Do(StageServe, "u", func() error {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
				mu.Lock()
				cur--
				mu.Unlock()
				return nil
			})
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Fatalf("peak concurrency = %d, want <= 3", peak)
	}
	if g.InFlight() != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", g.InFlight())
	}
}

func TestGateIsolatesPanics(t *testing.T) {
	g := NewGate(2)
	err := g.Do(StageServe, "evil.c", func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Unit != "evil.c" {
		t.Fatalf("want *PanicError for evil.c, got %v", err)
	}
	// The slot was released: the gate still admits work afterwards.
	done := make(chan struct{})
	go func() {
		g.Do(StageServe, "ok.c", func() error { return nil })
		g.Do(StageServe, "ok2.c", func() error { return nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gate wedged after a panic (slot leaked)")
	}
}
