package guard

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Budget violations, usable with errors.Is on any error a budgeted stage
// returns.
var (
	// ErrDeadline reports that the per-unit wall-clock deadline passed.
	ErrDeadline = errors.New("analysis deadline exceeded")
	// ErrSteps reports that the path-walk step budget is exhausted.
	ErrSteps = errors.New("path-walk step budget exhausted")
	// ErrMacroBudget reports that the macro-expansion budget is exhausted
	// (usually a self-referential or exponentially expanding macro).
	ErrMacroBudget = errors.New("macro-expansion budget exhausted")
	// ErrCanceled reports that the surrounding context was canceled.
	ErrCanceled = errors.New("analysis canceled")
)

// IsBudget reports whether err is a budget violation (as opposed to a
// malformed-input error): budget violations degrade a unit, input errors
// fail it.
func IsBudget(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrSteps) ||
		errors.Is(err, ErrMacroBudget) || errors.Is(err, ErrCanceled)
}

// Limits configures a Budget. Zero fields mean "no limit".
type Limits struct {
	// Deadline bounds the wall-clock time of one unit's analysis.
	Deadline time.Duration
	// MaxSteps bounds path-walk steps (block visits during extraction).
	MaxSteps int64
	// MaxMacroExpansions bounds total macro replacements during preprocessing.
	MaxMacroExpansions int64
}

// Budget tracks one unit's resource consumption against its limits. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// budget is unlimited), so hot loops can call them unconditionally.
type Budget struct {
	ctx         context.Context
	deadline    time.Time
	hasDeadline bool
	maxSteps    int64
	maxMacros   int64

	steps     atomic.Int64
	macros    atomic.Int64
	violation atomic.Int32 // 0 none; see v* constants
}

const (
	vNone int32 = iota
	vDeadline
	vSteps
	vMacro
	vCanceled
)

// NewBudget returns a budget enforcing l. ctx may carry an earlier deadline
// or cancellation of its own; nil means context.Background().
func NewBudget(ctx context.Context, l Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &Budget{ctx: ctx, maxSteps: l.MaxSteps, maxMacros: l.MaxMacroExpansions}
	if l.Deadline > 0 {
		b.deadline = time.Now().Add(l.Deadline)
		b.hasDeadline = true
	}
	if d, ok := ctx.Deadline(); ok && (!b.hasDeadline || d.Before(b.deadline)) {
		b.deadline = d
		b.hasDeadline = true
	}
	return b
}

// fail records the first violation; later violations keep the original cause.
func (b *Budget) fail(v int32) { b.violation.CompareAndSwap(vNone, v) }

// Err returns the first budget violation, or nil while within budget.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	switch b.violation.Load() {
	case vDeadline:
		return ErrDeadline
	case vSteps:
		return ErrSteps
	case vMacro:
		return ErrMacroBudget
	case vCanceled:
		return ErrCanceled
	}
	return nil
}

// checkTime samples the clock and context; called every timeCheckMask+1
// counter increments so hot loops stay cheap.
const timeCheckMask = 255

func (b *Budget) checkTime() {
	if b.hasDeadline && time.Now().After(b.deadline) {
		b.fail(vDeadline)
		return
	}
	if b.ctx.Err() != nil {
		b.fail(vCanceled)
	}
}

// Step charges one unit of path-walk work and returns the budget state. The
// deadline is sampled every 256 steps, so enforcement lags real time by at
// most a few hundred cheap operations.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	n := b.steps.Add(1)
	if b.maxSteps > 0 && n > b.maxSteps {
		b.fail(vSteps)
	}
	if n&timeCheckMask == 0 {
		b.checkTime()
	}
	return b.Err()
}

// MacroExpand charges one macro replacement and returns the budget state.
func (b *Budget) MacroExpand() error {
	if b == nil {
		return nil
	}
	n := b.macros.Add(1)
	if b.maxMacros > 0 && n > b.maxMacros {
		b.fail(vMacro)
	}
	if n&timeCheckMask == 0 {
		b.checkTime()
	}
	return b.Err()
}

// Steps returns the number of steps charged so far.
func (b *Budget) Steps() int64 {
	if b == nil {
		return 0
	}
	return b.steps.Load()
}

// MacroExpansions returns the number of macro replacements charged so far.
func (b *Budget) MacroExpansions() int64 {
	if b == nil {
		return 0
	}
	return b.macros.Load()
}
