package failpoint

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedHitIsFree(t *testing.T) {
	Disarm()
	if err := Hit(PreParse, "x.c"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	// The benchmark guard: the disarmed path must never allocate, so the
	// hooks can sit in hot persistence/parse paths at zero cost.
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = Hit(PreParse, "x.c")
		_ = Hit(MidSave, "x.c")
	}); allocs != 0 {
		t.Fatalf("disarmed Hit allocates: %v allocs/run", allocs)
	}
	if Active(MidSave, "x.c") {
		t.Fatal("disarmed Active reported true")
	}
}

// BenchmarkHitDisarmed measures the production cost of a shipped failpoint:
// one atomic load. Run with -bench to inspect; the alloc guard above is the
// enforced part.
func BenchmarkHitDisarmed(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hit(PreParse, "x.c")
	}
}

func TestArmError(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("pre-parse=error@2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		err := Hit(PreParse, "u.c")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: want injected error, got %v", i, err)
		}
	}
	if err := Hit(PreParse, "u.c"); err != nil {
		t.Fatalf("count exhausted but still firing: %v", err)
	}
}

func TestUnitMatch(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("pre-save=error/poison"); err != nil {
		t.Fatal(err)
	}
	if err := Hit(PreSave, "healthy.c"); err != nil {
		t.Fatalf("non-matching unit fired: %v", err)
	}
	if err := Hit(PreSave, "poison.c"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching unit did not fire: %v", err)
	}
	if !Active(PreSave, "poison.c") || Active(PreSave, "healthy.c") {
		t.Fatal("Active disagrees with match filter")
	}
}

func TestArmPanic(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("pre-extract=panic@1"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic action did not panic")
		}
		if !strings.Contains(r.(string), "injected panic") {
			t.Fatalf("panic value: %v", r)
		}
	}()
	_ = Hit(PreExtract, "u.c")
}

func TestArmSleep(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("pre-parse=sleep:30ms@1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit(PreParse, "u.c"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sleep too short: %v", d)
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	t.Cleanup(Disarm)
	for _, spec := range []string{
		"nonsense",
		"no-such-point=error",
		"pre-parse=explode",
		"pre-parse=error@zero",
		"pre-parse=error@-1",
		"pre-parse=sleep:fast",
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
}

func TestArmEmptyDisarms(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("pre-parse=error"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("armed spec not enabled")
	}
	if err := Arm(""); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty spec left failpoints armed")
	}
}

func TestMultipleTerms(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("pre-parse=error@1; mid-save=error/b.c"); err != nil {
		t.Fatal(err)
	}
	if err := Hit(PreParse, "a.c"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first term inert: %v", err)
	}
	if err := Hit(MidSave, "b.c"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second term inert: %v", err)
	}
}

func TestNetActions(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("coord-send=drop@1;worker-send=corrupt;worker-ping=dup@2;result-corrupt=drip:3ms"); err != nil {
		t.Fatal(err)
	}
	if f := Net(CoordSend, "u.c"); f.Act != NetDrop {
		t.Fatalf("coord-send: got %v, want NetDrop", f.Act)
	}
	if f := Net(CoordSend, "u.c"); f.Act != NetNone {
		t.Fatalf("coord-send count exhausted but still firing: %v", f.Act)
	}
	if f := Net(WorkerSend, "u.c"); f.Act != NetCorrupt {
		t.Fatalf("worker-send: got %v, want NetCorrupt", f.Act)
	}
	for i := 0; i < 2; i++ {
		if f := Net(WorkerPing, "u.c"); f.Act != NetDup {
			t.Fatalf("worker-ping hit %d: got %v, want NetDup", i, f.Act)
		}
	}
	f := Net(ResultCorrupt, "u.c")
	if f.Act != NetDrip || f.Sleep != 3*time.Millisecond {
		t.Fatalf("result-corrupt: got %+v, want drip 3ms", f)
	}
}

func TestNetDisarmedIsFree(t *testing.T) {
	Disarm()
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = Net(CoordSend, "x.c")
	}); allocs != 0 {
		t.Fatalf("disarmed Net allocates: %v allocs/run", allocs)
	}
}

func TestNetInlineActions(t *testing.T) {
	t.Cleanup(Disarm)
	// sleep at a net site is the "delay" fault mode: performed inline, the
	// site proceeds normally afterwards.
	if err := Arm("coord-send=sleep:30ms@1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if f := Net(CoordSend, "u.c"); f.Act != NetNone {
		t.Fatalf("sleep should be inline, got %v", f.Act)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("net sleep returned after %v, want >= 30ms", d)
	}
	// error at a net site is a severed send.
	if err := Arm("worker-send=error@1"); err != nil {
		t.Fatal(err)
	}
	if f := Net(WorkerSend, "u.c"); f.Act != NetDrop {
		t.Fatalf("error at net site: got %v, want NetDrop", f.Act)
	}
}

func TestNetActionsNoOpAtHitSites(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("pre-parse=drop;pre-save=corrupt"); err != nil {
		t.Fatal(err)
	}
	if err := Hit(PreParse, "u.c"); err != nil {
		t.Fatalf("drop at a Hit site should be a no-op, got %v", err)
	}
	if err := Hit(PreSave, "u.c"); err != nil {
		t.Fatalf("corrupt at a Hit site should be a no-op, got %v", err)
	}
}

func TestCorruptCopies(t *testing.T) {
	orig := []byte("hello world frame bytes")
	keep := string(orig)
	got := Corrupt(orig)
	if string(orig) != keep {
		t.Fatal("Corrupt modified its input")
	}
	if string(got) == keep {
		t.Fatal("Corrupt returned unmodified bytes")
	}
	if len(got) != len(orig) {
		t.Fatalf("Corrupt changed length: %d -> %d", len(orig), len(got))
	}
	if Corrupt(nil) != nil && len(Corrupt(nil)) != 0 {
		t.Fatal("Corrupt(nil) should be empty")
	}
}
