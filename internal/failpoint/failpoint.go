// Package failpoint is a deterministic fault-injection layer for testing the
// durability of the Pallas pipeline. Named hook sites ("failpoints") sit at
// the stage boundaries of an analysis — pre-parse, pre-extract, pre-save,
// mid-save — and are inert unless explicitly armed, either programmatically
// via Arm or through the PALLAS_FAILPOINTS environment variable. An armed
// point can return an injected (transient) error, panic, SIGKILL the whole
// process, or sleep, optionally only for its first N hits and only for units
// whose name contains a match string.
//
// The disarmed fast path is a single atomic load with zero allocations, so
// shipping the hooks in production code paths costs nothing (a benchmark
// guard in failpoint_test.go keeps it that way).
//
// Spec grammar (terms separated by ';'):
//
//	term   = point "=" action [ "@" count ] [ "/" match ]
//	point  = "pre-parse" | "pre-extract" | "extract-func" | "pre-save" |
//	         "mid-save" | "cache-load" | "cache-store" | "coord-send" |
//	         "worker-send" | "worker-ping" | "result-corrupt" |
//	         "peer-get" | "peer-put" | "peer-serve"
//	action = "error" | "panic" | "kill" | "sleep:" duration |
//	         "drop" | "corrupt" | "dup" | "drip:" duration
//
// The last four actions are network faults, consumed through Net at the
// cluster's frame sites (coord-send, worker-send, worker-ping,
// result-corrupt): drop severs the connection, corrupt flips frame bytes,
// dup delivers twice, drip slow-writes the frame with the given pause
// between chunks. At ordinary Hit sites they are no-ops.
//
// Examples:
//
//	PALLAS_FAILPOINTS="pre-parse=error@2"          first two parses fail transiently
//	PALLAS_FAILPOINTS="mid-save=kill/c3.c"         SIGKILL while saving unit c3.c
//	PALLAS_FAILPOINTS="pre-extract=sleep:50ms@1"   one slow extraction
//	PALLAS_FAILPOINTS="worker-send=drop@1"         first result frame never arrives
//	PALLAS_FAILPOINTS="coord-send=drip:5ms/c2.c"   slow-drip every dispatch of c2.c
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The failpoint names wired into the pipeline, in stage order.
const (
	// PreParse fires at the top of AnalyzeSource, before preprocessing and
	// parsing of one unit.
	PreParse = "pre-parse"
	// PreExtract fires before path extraction of one unit.
	PreExtract = "pre-extract"
	// ExtractFunc fires before path extraction of one function within a
	// unit (the hit's unit argument is the function name), so tests can
	// crash or fail exactly one function of a multi-function unit — the
	// fault-isolation boundary of the parallel intra-unit pipeline.
	ExtractFunc = "extract-func"
	// PreSave fires at the start of a persistence operation (path database
	// save, journal append).
	PreSave = "pre-save"
	// MidSave fires in the middle of a persistence operation: after a partial
	// write has reached the file but before the operation completes, so a
	// "kill" here leaves a torn record / orphaned temp file behind.
	MidSave = "mid-save"
	// CacheLoad fires before a persistent result-cache read; an "error" here
	// models a failing disk under the cache's read path.
	CacheLoad = "cache-load"
	// CacheStore fires before a persistent result-cache write; an "error"
	// here models a full or failing disk under the cache's write path and is
	// what trips the cache tier's circuit breaker in chaos tests.
	CacheStore = "cache-store"
	// CoordSend fires on the cluster coordinator as it dispatches one unit
	// to a worker. Queried through Net: the network actions (drop, corrupt,
	// dup, drip) and sleep model a flaky link on the coordinator's side.
	CoordSend = "coord-send"
	// WorkerSend fires on a cluster worker as it writes a result frame back
	// to the coordinator. Queried through Net.
	WorkerSend = "worker-send"
	// WorkerPing fires on a cluster worker's heartbeat endpoint; "drop"
	// severs the probe so tests can evict a worker whose unit connections
	// are still alive — the zombie window.
	WorkerPing = "worker-ping"
	// ResultCorrupt fires on a cluster worker after the per-unit content
	// checksum is fixed but before the result is framed; "corrupt" mangles
	// the report bytes there, modeling bad RAM or a corrupting NIC that the
	// frame CRC cannot catch (the frame is computed over the mangled bytes)
	// — only the end-to-end content checksum detects it.
	ResultCorrupt = "result-corrupt"
	// PeerGet fires on the shared cache tier as a peer fetch is issued (the
	// hit's unit argument is the target peer address). Queried through Net:
	// drop severs the fetch, sleep stalls it against the per-op deadline,
	// corrupt mangles the returned frame — every mode must degrade the read
	// to a local miss, never fail the analysis.
	PeerGet = "peer-get"
	// PeerPut fires on the shared cache tier as a replicated write is issued
	// (the hit's unit argument is the target peer address). Queried through
	// Net; a dropped put must queue a hinted handoff, not lose the entry.
	PeerPut = "peer-put"
	// PeerServe fires on the worker answering a peer cache request, before
	// the response frame is written (the hit's unit argument is the cache
	// key). Queried through Net: corrupt mangles the outgoing entry frame so
	// the requester's content-sum verification must catch it.
	PeerServe = "peer-serve"
)

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "PALLAS_FAILPOINTS"

// ErrInjected is the base error of every failure injected by an "error"
// action; match it with errors.Is. Injected errors model transient faults,
// so the batch retry policy treats them as retriable.
var ErrInjected = errors.New("failpoint: injected failure")

type action int

const (
	actError action = iota
	actPanic
	actKill
	actSleep
	actDrop
	actCorrupt
	actDup
	actDrip
)

type point struct {
	name      string
	act       action
	sleep     time.Duration
	match     string       // unit substring filter; empty matches all
	remaining atomic.Int64 // hits left; negative means unlimited
}

var (
	armed  atomic.Bool // fast-path gate: false ⇒ Hit is a no-op
	mu     sync.Mutex
	points map[string][]*point
)

// Arm installs the failpoints described by spec (see the package comment for
// the grammar), replacing any previously armed set. An empty spec disarms.
func Arm(spec string) error {
	parsed := map[string][]*point{}
	n := 0
	for _, term := range strings.Split(spec, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		p, err := parseTerm(term)
		if err != nil {
			return err
		}
		parsed[p.name] = append(parsed[p.name], p)
		n++
	}
	mu.Lock()
	defer mu.Unlock()
	points = parsed
	armed.Store(n > 0)
	return nil
}

// ArmFromEnv arms the failpoints named in PALLAS_FAILPOINTS, if any. Called
// once at process start by the CLI binaries.
func ArmFromEnv() error {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil
	}
	return Arm(spec)
}

// Disarm removes every failpoint, restoring the zero-overhead path.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(false)
}

// Enabled reports whether any failpoint is armed.
func Enabled() bool { return armed.Load() }

// parseTerm parses one "point=action[@count][/match]" term.
func parseTerm(term string) (*point, error) {
	name, rest, ok := strings.Cut(term, "=")
	if !ok {
		return nil, fmt.Errorf("failpoint: bad term %q (want point=action)", term)
	}
	switch name {
	case PreParse, PreExtract, ExtractFunc, PreSave, MidSave, CacheLoad, CacheStore,
		CoordSend, WorkerSend, WorkerPing, ResultCorrupt, PeerGet, PeerPut, PeerServe:
	default:
		return nil, fmt.Errorf("failpoint: unknown point %q", name)
	}
	rest, match, _ := cutLast(rest, "/")
	rest, countStr, hasCount := cutLast(rest, "@")
	p := &point{name: name, match: match}
	p.remaining.Store(-1)
	if hasCount {
		n, err := strconv.Atoi(countStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("failpoint: bad count %q in %q", countStr, term)
		}
		p.remaining.Store(int64(n))
	}
	switch {
	case rest == "error":
		p.act = actError
	case rest == "panic":
		p.act = actPanic
	case rest == "kill":
		p.act = actKill
	case rest == "drop":
		p.act = actDrop
	case rest == "corrupt":
		p.act = actCorrupt
	case rest == "dup":
		p.act = actDup
	case strings.HasPrefix(rest, "sleep:"):
		d, err := time.ParseDuration(strings.TrimPrefix(rest, "sleep:"))
		if err != nil {
			return nil, fmt.Errorf("failpoint: bad sleep duration in %q: %v", term, err)
		}
		p.act = actSleep
		p.sleep = d
	case strings.HasPrefix(rest, "drip:"):
		d, err := time.ParseDuration(strings.TrimPrefix(rest, "drip:"))
		if err != nil {
			return nil, fmt.Errorf("failpoint: bad drip duration in %q: %v", term, err)
		}
		p.act = actDrip
		p.sleep = d
	default:
		return nil, fmt.Errorf("failpoint: unknown action %q in %q", rest, term)
	}
	return p, nil
}

// cutLast splits s around the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	if i := strings.LastIndex(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):], true
	}
	return s, "", false
}

// Hit triggers the named failpoint for the given unit. Disarmed (the
// default), it is a single atomic load and returns nil. Armed, it may return
// an injected error, panic, kill the process, or sleep, per the armed spec.
func Hit(name, unit string) error {
	if !armed.Load() {
		return nil
	}
	return hitSlow(name, unit)
}

// Active reports whether the named failpoint would trigger for unit without
// consuming a hit. Persistence code uses it to decide whether to split a
// write so MidSave can tear it.
func Active(name, unit string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	for _, p := range points[name] {
		if p.matches(unit) && p.remaining.Load() != 0 {
			return true
		}
	}
	return false
}

func (p *point) matches(unit string) bool {
	return p.match == "" || strings.Contains(unit, p.match)
}

// take consumes one hit, honouring the @count cap.
func (p *point) take() bool {
	for {
		n := p.remaining.Load()
		if n == 0 {
			return false
		}
		if n < 0 {
			return true // unlimited
		}
		if p.remaining.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func hitSlow(name, unit string) error {
	mu.Lock()
	var fire *point
	for _, p := range points[name] {
		if p.matches(unit) && p.take() {
			fire = p
			break
		}
	}
	mu.Unlock()
	if fire == nil {
		return nil
	}
	switch fire.act {
	case actError:
		return fmt.Errorf("%w at %s (%s)", ErrInjected, name, unit)
	case actPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %s (%s)", name, unit))
	case actKill:
		// A real crash: SIGKILL cannot be caught, so no deferred cleanup or
		// atomic-rename completion runs — exactly the torn state the recovery
		// code must handle.
		p, err := os.FindProcess(os.Getpid())
		if err == nil {
			_ = p.Kill()
		}
		select {} // never proceed past a kill, even if signaling raced
	case actSleep:
		time.Sleep(fire.sleep)
	}
	// Network actions (drop, corrupt, dup, drip) only make sense at frame
	// sites, which query them through Net; at a Hit site they are no-ops.
	return nil
}

// NetAction is the kind of network fault a frame site must apply. Sites
// query with Net; a NetNone means "no fault, proceed normally".
type NetAction int

const (
	// NetNone: no fault (disarmed, no match, or an inline action like sleep
	// already performed by Net itself).
	NetNone NetAction = iota
	// NetDrop severs delivery: the site must abort without sending or
	// receiving any bytes — a crashed connection, not an HTTP error.
	NetDrop
	// NetCorrupt flips bytes in the frame the site is about to transmit.
	NetCorrupt
	// NetDup delivers the frame (or dispatch) twice.
	NetDup
	// NetDrip slow-drips the transmission: the site writes in small chunks
	// sleeping Sleep between them, holding the peer on a trickling
	// connection that never quite stalls out.
	NetDrip
)

// NetFault is what a frame site must do, as decided by the armed spec.
type NetFault struct {
	Act NetAction
	// Sleep is the per-chunk pause for NetDrip.
	Sleep time.Duration
}

// Net triggers the named failpoint at a frame (network) site. Disarmed, it
// is a single atomic load returning NetNone. Armed, inline actions fire
// immediately — sleep (the "delay" fault mode) blocks here, error returns
// as NetDrop (a failed send is a severed send), panic and kill behave as in
// Hit — while the byte-level actions (drop, corrupt, dup, drip) are
// returned for the site to apply to its frame.
func Net(name, unit string) NetFault {
	if !armed.Load() {
		return NetFault{}
	}
	mu.Lock()
	var fire *point
	for _, p := range points[name] {
		if p.matches(unit) && p.take() {
			fire = p
			break
		}
	}
	mu.Unlock()
	if fire == nil {
		return NetFault{}
	}
	switch fire.act {
	case actSleep:
		time.Sleep(fire.sleep)
		return NetFault{}
	case actError, actDrop:
		return NetFault{Act: NetDrop}
	case actCorrupt:
		return NetFault{Act: NetCorrupt}
	case actDup:
		return NetFault{Act: NetDup}
	case actDrip:
		return NetFault{Act: NetDrip, Sleep: fire.sleep}
	case actPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %s (%s)", name, unit))
	case actKill:
		p, err := os.FindProcess(os.Getpid())
		if err == nil {
			_ = p.Kill()
		}
		select {}
	}
	return NetFault{}
}

// Corrupt flips a byte near the middle of b, returning a mangled copy; the
// original is never modified (callers may hold cached or shared slices).
func Corrupt(b []byte) []byte {
	out := append([]byte(nil), b...)
	if len(out) > 0 {
		out[len(out)/2] ^= 0xff
	}
	return out
}

// CorruptJSON changes one digit in b (the last one), returning a mangled
// copy that is still well-formed JSON — a digit sits inside a string or a
// number, never in structure. This is the corruption for faults injected
// beneath re-marshaling layers (a result-corrupt payload must survive
// json.Marshal on its way out; only an end-to-end content checksum can
// catch it). Returns b unchanged when it holds no digit.
func CorruptJSON(b []byte) []byte {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] >= '0' && b[i] <= '9' {
			out := append([]byte(nil), b...)
			if out[i] == '9' {
				out[i] = '0'
			} else {
				out[i]++
			}
			return out
		}
	}
	return b
}
