// Package cpp implements the small C preprocessor used by the Pallas
// front-end. The paper's toolchain "combines the source codes of the target
// fast path and the relevant header files into a single large file" before
// analysis; Merge does exactly that: it resolves #include against a set of
// search roots (each file included once), expands object-like and simple
// function-like #define macros, and evaluates #if/#ifdef conditionals.
package cpp

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pallas/internal/guard"
)

// Source abstracts where included files come from, so corpora can live either
// on disk or in memory.
type Source interface {
	// Load returns the contents of the named file, or an error.
	Load(name string) (string, error)
}

// FileSource loads includes relative to a list of directories.
type FileSource struct{ Dirs []string }

// Load implements Source.
func (fs FileSource) Load(name string) (string, error) {
	for _, d := range fs.Dirs {
		b, err := os.ReadFile(filepath.Join(d, name))
		if err == nil {
			return string(b), nil
		}
	}
	return "", fmt.Errorf("include not found: %s", name)
}

// MapSource serves includes from an in-memory map (used by the corpus).
type MapSource map[string]string

// Load implements Source.
func (m MapSource) Load(name string) (string, error) {
	if s, ok := m[name]; ok {
		return s, nil
	}
	return "", fmt.Errorf("include not found: %s", name)
}

// Macro is one #define.
type Macro struct {
	Name   string
	Params []string // nil for object-like macros
	Body   string
	FnLike bool
}

// Preprocessor holds macro and include state across files.
type Preprocessor struct {
	// MaxExpansions bounds total macro replacements per merge; a
	// self-referential macro like `#define A A A` otherwise grows the output
	// exponentially. 0 means DefaultMaxExpansions.
	MaxExpansions int64
	// Budget optionally ties the merge to a per-unit analysis budget
	// (deadline + shared macro-expansion counter); nil means unbudgeted.
	Budget *guard.Budget

	src      Source
	macros   map[string]Macro
	included map[string]bool
	errs     []error
	depth    int
	stack    []string // in-progress include chain, for cycle diagnostics
	nExpand  int64
	blown    bool // expansion budget exhausted; stop expanding, keep merging
}

// MaxIncludeDepth bounds nested includes.
const MaxIncludeDepth = 64

// DefaultMaxExpansions is the per-merge macro replacement budget when neither
// MaxExpansions nor a Budget limit is set.
const DefaultMaxExpansions = 1 << 20

// maxExpandedLine caps the size one logical line may grow to under
// expansion, catching exponential blowups between budget samples.
const maxExpandedLine = 1 << 20

// New returns a preprocessor reading includes from src (may be nil when the
// input has no includes).
func New(src Source) *Preprocessor {
	return &Preprocessor{src: src, macros: map[string]Macro{}, included: map[string]bool{}}
}

// Define installs a predefined object-like macro (e.g. CONFIG_ options).
func (pp *Preprocessor) Define(name, body string) {
	pp.macros[name] = Macro{Name: name, Body: body}
}

// Errors reports the diagnostics accumulated so far.
func (pp *Preprocessor) Errors() []error { return pp.errs }

func (pp *Preprocessor) errorf(file string, line int, format string, args ...any) {
	pp.errs = append(pp.errs, fmt.Errorf("%s:%d: %s", file, line, fmt.Sprintf(format, args...)))
}

// Merge preprocesses the named file and every file it includes into a single
// translation unit, annotated with `#line`-free plain text (positions keep
// the merged line numbering; the front-end reports the merged file name).
func (pp *Preprocessor) Merge(file string) (string, error) {
	text, err := pp.src.Load(file)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	pp.process(file, text, &sb)
	if len(pp.errs) > 0 {
		return sb.String(), pp.errs[0]
	}
	return sb.String(), nil
}

// MergeText preprocesses the given text directly (no initial file load).
func (pp *Preprocessor) MergeText(file, text string) (string, error) {
	var sb strings.Builder
	pp.process(file, text, &sb)
	if len(pp.errs) > 0 {
		return sb.String(), pp.errs[0]
	}
	return sb.String(), nil
}

// condState tracks one #if level.
type condState struct {
	active    bool // this branch taken
	everTaken bool // some branch at this level taken
	parentOn  bool
}

func (pp *Preprocessor) process(file, text string, out *strings.Builder) {
	if pp.depth >= MaxIncludeDepth {
		pp.errorf(file, 0, "include depth exceeds %d (chain: %s)",
			MaxIncludeDepth, strings.Join(pp.stack, " -> "))
		return
	}
	pp.depth++
	pp.stack = append(pp.stack, file)
	defer func() {
		pp.depth--
		pp.stack = pp.stack[:len(pp.stack)-1]
	}()

	lines := splitLogicalLines(text)
	var conds []condState
	on := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	for i := 0; i < len(lines); i++ {
		line := lines[i].text
		lineno := lines[i].line
		trim := strings.TrimSpace(line)
		if strings.HasPrefix(trim, "#") {
			dir, rest := splitDirective(trim)
			switch dir {
			case "include":
				if !on() {
					continue
				}
				name := parseIncludeName(rest)
				if name == "" {
					pp.errorf(file, lineno, "malformed #include %q", rest)
					continue
				}
				// Include-once already prevents cyclic recursion, but a cycle
				// is a real defect in the input — report it explicitly rather
				// than silently skipping the re-inclusion.
				if cycleAt := indexOf(pp.stack, name); cycleAt >= 0 {
					pp.errorf(file, lineno, "include cycle detected: %s -> %s",
						strings.Join(pp.stack[cycleAt:], " -> "), name)
					continue
				}
				if pp.included[name] {
					continue
				}
				pp.included[name] = true
				if pp.src == nil {
					pp.errorf(file, lineno, "no include source configured for %q", name)
					continue
				}
				inc, err := pp.src.Load(name)
				if err != nil {
					// System headers (<...>) missing is tolerated: kernel-style
					// corpus code does not need libc headers.
					if strings.HasPrefix(strings.TrimSpace(rest), "<") {
						continue
					}
					pp.errorf(file, lineno, "%v", err)
					continue
				}
				pp.process(name, inc, out)
			case "define":
				if !on() {
					continue
				}
				pp.parseDefine(file, lineno, rest)
			case "undef":
				if !on() {
					continue
				}
				delete(pp.macros, strings.TrimSpace(rest))
			case "ifdef":
				name := strings.TrimSpace(rest)
				_, def := pp.macros[name]
				conds = append(conds, condState{active: def, everTaken: def, parentOn: on()})
			case "ifndef":
				name := strings.TrimSpace(rest)
				_, def := pp.macros[name]
				conds = append(conds, condState{active: !def, everTaken: !def, parentOn: on()})
			case "if":
				v := pp.evalCondition(file, lineno, rest)
				conds = append(conds, condState{active: v, everTaken: v, parentOn: on()})
			case "elif":
				if len(conds) == 0 {
					pp.errorf(file, lineno, "#elif without #if")
					continue
				}
				top := &conds[len(conds)-1]
				if top.everTaken {
					top.active = false
				} else {
					v := pp.evalCondition(file, lineno, rest)
					top.active = v
					top.everTaken = v
				}
			case "else":
				if len(conds) == 0 {
					pp.errorf(file, lineno, "#else without #if")
					continue
				}
				top := &conds[len(conds)-1]
				top.active = !top.everTaken
				top.everTaken = true
			case "endif":
				if len(conds) == 0 {
					pp.errorf(file, lineno, "#endif without #if")
					continue
				}
				conds = conds[:len(conds)-1]
			case "pragma", "error", "warning", "line":
				// ignored
			default:
				pp.errorf(file, lineno, "unknown directive #%s", dir)
			}
			continue
		}
		if !on() {
			continue
		}
		out.WriteString(pp.expandAt(file, lineno, line))
		out.WriteString("\n")
	}
	if len(conds) > 0 {
		pp.errorf(file, lines[len(lines)-1].line, "unterminated #if")
	}
}

type logicalLine struct {
	text string
	line int
}

// splitLogicalLines splits text into lines, joining backslash continuations.
func splitLogicalLines(text string) []logicalLine {
	raw := strings.Split(text, "\n")
	var out []logicalLine
	for i := 0; i < len(raw); i++ {
		start := i + 1
		line := raw[i]
		for strings.HasSuffix(line, "\\") && i+1 < len(raw) {
			line = strings.TrimSuffix(line, "\\") + " " + raw[i+1]
			i++
		}
		out = append(out, logicalLine{text: line, line: start})
	}
	return out
}

func splitDirective(trim string) (dir, rest string) {
	s := strings.TrimSpace(strings.TrimPrefix(trim, "#"))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' || s[i] == '(' {
			if s[i] == '(' {
				return s[:i], s[i:]
			}
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

func parseIncludeName(rest string) string {
	r := strings.TrimSpace(rest)
	if len(r) >= 2 && (r[0] == '"' || r[0] == '<') {
		closing := byte('"')
		if r[0] == '<' {
			closing = '>'
		}
		if j := strings.IndexByte(r[1:], closing); j >= 0 {
			return r[1 : 1+j]
		}
	}
	return ""
}

func (pp *Preprocessor) parseDefine(file string, line int, rest string) {
	rest = strings.TrimLeft(rest, " \t")
	i := 0
	for i < len(rest) && (isIdentByte(rest[i]) || (i > 0 && rest[i] >= '0' && rest[i] <= '9')) {
		i++
	}
	if i == 0 {
		pp.errorf(file, line, "malformed #define")
		return
	}
	name := rest[:i]
	if i < len(rest) && rest[i] == '(' {
		// function-like
		j := strings.IndexByte(rest[i:], ')')
		if j < 0 {
			pp.errorf(file, line, "malformed function-like macro %s", name)
			return
		}
		paramsText := rest[i+1 : i+j]
		var params []string
		for _, pn := range strings.Split(paramsText, ",") {
			pn = strings.TrimSpace(pn)
			if pn != "" {
				params = append(params, pn)
			}
		}
		body := strings.TrimSpace(rest[i+j+1:])
		pp.macros[name] = Macro{Name: name, Params: params, Body: body, FnLike: true}
		return
	}
	body := strings.TrimSpace(rest[i:])
	pp.macros[name] = Macro{Name: name, Body: body}
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isIdentStartByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// expand performs macro expansion on one line of ordinary source text.
func (pp *Preprocessor) expand(line string) string {
	return pp.expandAt("", 0, line)
}

// expandAt is expand with a source location for budget diagnostics.
func (pp *Preprocessor) expandAt(file string, lineno int, line string) string {
	return pp.expandDepth(file, lineno, line, 0)
}

const maxExpandDepth = 16

// chargeExpansion counts one macro replacement against the local cap and the
// shared analysis budget. Once either is exhausted the merge keeps going but
// stops expanding — output stays bounded, and exactly one error is recorded.
func (pp *Preprocessor) chargeExpansion(file string, lineno int) bool {
	if pp.blown {
		return false
	}
	pp.nExpand++
	limit := pp.MaxExpansions
	if limit <= 0 {
		limit = DefaultMaxExpansions
	}
	if pp.nExpand > limit {
		pp.blowBudget(file, lineno, fmt.Errorf("%w after %d replacements (self-referential macro?)",
			guard.ErrMacroBudget, pp.nExpand-1))
		return false
	}
	if err := pp.Budget.MacroExpand(); err != nil {
		pp.blowBudget(file, lineno, err)
		return false
	}
	return true
}

func (pp *Preprocessor) blowBudget(file string, lineno int, cause error) {
	pp.blown = true
	pp.errs = append(pp.errs, fmt.Errorf("%s:%d: %w", file, lineno, cause))
}

func (pp *Preprocessor) expandDepth(file string, lineno int, line string, depth int) string {
	if depth > maxExpandDepth || pp.blown {
		return line
	}
	if len(line) > maxExpandedLine {
		pp.blowBudget(file, lineno, fmt.Errorf("%w: expanded line exceeds %d bytes",
			guard.ErrMacroBudget, maxExpandedLine))
		return line[:maxExpandedLine]
	}
	var sb strings.Builder
	i := 0
	changed := false
	for i < len(line) {
		c := line[i]
		// Skip string and char literals.
		if c == '"' || c == '\'' {
			q := c
			sb.WriteByte(c)
			i++
			for i < len(line) {
				sb.WriteByte(line[i])
				if line[i] == '\\' && i+1 < len(line) {
					i++
					sb.WriteByte(line[i])
					i++
					continue
				}
				if line[i] == q {
					i++
					break
				}
				i++
			}
			continue
		}
		// Skip comments.
		if c == '/' && i+1 < len(line) && line[i+1] == '/' {
			sb.WriteString(line[i:])
			break
		}
		if !isIdentStartByte(c) {
			sb.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < len(line) && isIdentByte(line[j]) {
			j++
		}
		word := line[i:j]
		m, ok := pp.macros[word]
		if !ok {
			sb.WriteString(word)
			i = j
			continue
		}
		if !m.FnLike {
			if !pp.chargeExpansion(file, lineno) {
				sb.WriteString(word)
				i = j
				continue
			}
			sb.WriteString(m.Body)
			changed = true
			i = j
			continue
		}
		// Function-like: need "(...)" after (possibly with spaces).
		k := j
		for k < len(line) && (line[k] == ' ' || line[k] == '\t') {
			k++
		}
		if k >= len(line) || line[k] != '(' {
			sb.WriteString(word)
			i = j
			continue
		}
		args, end, ok2 := splitMacroArgs(line, k)
		if !ok2 {
			sb.WriteString(word)
			i = j
			continue
		}
		if !pp.chargeExpansion(file, lineno) {
			sb.WriteString(word)
			i = j
			continue
		}
		sb.WriteString(substituteParams(m, args))
		changed = true
		i = end
	}
	out := sb.String()
	if changed && !pp.blown {
		return pp.expandDepth(file, lineno, out, depth+1)
	}
	return out
}

// indexOf returns the index of s in list, or -1.
func indexOf(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	return -1
}

// splitMacroArgs parses "(a, b(c,d), e)" starting at the '(' index; returns
// the top-level comma-separated arguments and the index just past ')'.
func splitMacroArgs(line string, lp int) ([]string, int, bool) {
	depth := 0
	var args []string
	var cur strings.Builder
	i := lp
	for ; i < len(line); i++ {
		c := line[i]
		switch c {
		case '(':
			depth++
			if depth > 1 {
				cur.WriteByte(c)
			}
		case ')':
			depth--
			if depth == 0 {
				if s := strings.TrimSpace(cur.String()); s != "" || len(args) > 0 {
					args = append(args, s)
				}
				return args, i + 1, true
			}
			cur.WriteByte(c)
		case ',':
			if depth == 1 {
				args = append(args, strings.TrimSpace(cur.String()))
				cur.Reset()
			} else {
				cur.WriteByte(c)
			}
		default:
			cur.WriteByte(c)
		}
	}
	return nil, lp, false
}

// substituteParams textually replaces macro parameters with arguments.
func substituteParams(m Macro, args []string) string {
	body := m.Body
	var sb strings.Builder
	i := 0
	for i < len(body) {
		c := body[i]
		if !isIdentStartByte(c) {
			sb.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < len(body) && isIdentByte(body[j]) {
			j++
		}
		word := body[i:j]
		replaced := false
		for pi, pn := range m.Params {
			if pn == word {
				if pi < len(args) {
					sb.WriteString(args[pi])
				}
				replaced = true
				break
			}
		}
		if !replaced {
			sb.WriteString(word)
		}
		i = j
	}
	return sb.String()
}

// evalCondition evaluates a #if / #elif expression: integers, defined(X),
// macro names (expanding to their numeric bodies), ! && || == != < > <= >=
// and parentheses.
func (pp *Preprocessor) evalCondition(file string, line int, expr string) bool {
	p := &condParser{pp: pp, s: expr}
	v := p.parseOr()
	p.skipSpace()
	if p.i < len(p.s) {
		pp.errorf(file, line, "trailing junk in #if condition: %q", p.s[p.i:])
	}
	return v != 0
}

type condParser struct {
	pp *Preprocessor
	s  string
	i  int
}

func (p *condParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *condParser) parseOr() int64 {
	v := p.parseAnd()
	for {
		p.skipSpace()
		if strings.HasPrefix(p.s[p.i:], "||") {
			p.i += 2
			r := p.parseAnd()
			if v != 0 || r != 0 {
				v = 1
			} else {
				v = 0
			}
			continue
		}
		return v
	}
}

func (p *condParser) parseAnd() int64 {
	v := p.parseCmp()
	for {
		p.skipSpace()
		if strings.HasPrefix(p.s[p.i:], "&&") {
			p.i += 2
			r := p.parseCmp()
			if v != 0 && r != 0 {
				v = 1
			} else {
				v = 0
			}
			continue
		}
		return v
	}
}

func (p *condParser) parseCmp() int64 {
	v := p.parsePrimary()
	for {
		p.skipSpace()
		rest := p.s[p.i:]
		var op string
		for _, cand := range []string{"==", "!=", "<=", ">=", "<", ">"} {
			if strings.HasPrefix(rest, cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return v
		}
		p.i += len(op)
		r := p.parsePrimary()
		var b bool
		switch op {
		case "==":
			b = v == r
		case "!=":
			b = v != r
		case "<=":
			b = v <= r
		case ">=":
			b = v >= r
		case "<":
			b = v < r
		case ">":
			b = v > r
		}
		if b {
			v = 1
		} else {
			v = 0
		}
	}
}

func (p *condParser) parsePrimary() int64 {
	p.skipSpace()
	if p.i >= len(p.s) {
		return 0
	}
	c := p.s[p.i]
	if c == '!' {
		p.i++
		if p.parsePrimary() == 0 {
			return 1
		}
		return 0
	}
	if c == '(' {
		p.i++
		v := p.parseOr()
		p.skipSpace()
		if p.i < len(p.s) && p.s[p.i] == ')' {
			p.i++
		}
		return v
	}
	if c >= '0' && c <= '9' {
		j := p.i
		for j < len(p.s) && (isIdentByte(p.s[j])) {
			j++
		}
		text := strings.TrimRight(p.s[p.i:j], "uUlL")
		p.i = j
		var v int64
		if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
			u, _ := strconv.ParseUint(text[2:], 16, 64)
			v = int64(u)
		} else {
			v, _ = strconv.ParseInt(text, 10, 64)
		}
		return v
	}
	if isIdentStartByte(c) {
		j := p.i
		for j < len(p.s) && isIdentByte(p.s[j]) {
			j++
		}
		word := p.s[p.i:j]
		p.i = j
		if word == "defined" {
			p.skipSpace()
			paren := false
			if p.i < len(p.s) && p.s[p.i] == '(' {
				paren = true
				p.i++
				p.skipSpace()
			}
			k := p.i
			for k < len(p.s) && isIdentByte(p.s[k]) {
				k++
			}
			name := p.s[p.i:k]
			p.i = k
			if paren {
				p.skipSpace()
				if p.i < len(p.s) && p.s[p.i] == ')' {
					p.i++
				}
			}
			if _, ok := p.pp.macros[name]; ok {
				return 1
			}
			return 0
		}
		if m, ok := p.pp.macros[word]; ok && !m.FnLike {
			v, err := strconv.ParseInt(strings.TrimSpace(m.Body), 0, 64)
			if err == nil {
				return v
			}
			return 0
		}
		return 0 // undefined identifiers are 0 in #if
	}
	p.i++
	return 0
}
