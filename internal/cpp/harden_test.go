package cpp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pallas/internal/guard"
)

// TestIncludeCycleDetected asserts a cyclic include chain terminates with a
// clear per-cycle error while the rest of the unit still merges.
func TestIncludeCycleDetected(t *testing.T) {
	src := MapSource{
		"a.h": "#include \"b.h\"\nint from_a;\n",
		"b.h": "#include \"a.h\"\nint from_b;\n",
	}
	pp := New(src)
	out, err := pp.MergeText("main.c", "#include \"a.h\"\nint main_var;\n")
	if err == nil {
		t.Fatal("cycle must be reported as an error")
	}
	if !strings.Contains(err.Error(), "include cycle detected") ||
		!strings.Contains(err.Error(), "a.h -> b.h -> a.h") {
		t.Errorf("cycle error should name the chain, got: %v", err)
	}
	// Degraded output still contains everything outside the back-edge.
	for _, want := range []string{"from_a", "from_b", "main_var"} {
		if !strings.Contains(out, want) {
			t.Errorf("partial merge missing %q:\n%s", want, out)
		}
	}
}

// TestIncludeSelfCycle covers the degenerate file-includes-itself shape.
func TestIncludeSelfCycle(t *testing.T) {
	pp := New(MapSource{"self.h": "#include \"self.h\"\nint once;\n"})
	out, err := pp.MergeText("main.c", "#include \"self.h\"\n")
	if err == nil || !strings.Contains(err.Error(), "include cycle detected") {
		t.Fatalf("want cycle error, got %v", err)
	}
	if strings.Count(out, "int once;") != 1 {
		t.Errorf("self-including header must merge exactly once:\n%s", out)
	}
}

// TestDiamondIncludeIsNotACycle guards against the cycle detector flagging
// legitimate include-once diamonds (two files both including a common header).
func TestDiamondIncludeIsNotACycle(t *testing.T) {
	src := MapSource{
		"common.h": "int shared;\n",
		"l.h":      "#include \"common.h\"\nint l;\n",
		"r.h":      "#include \"common.h\"\nint r;\n",
	}
	pp := New(src)
	out, err := pp.MergeText("main.c", "#include \"l.h\"\n#include \"r.h\"\n")
	if err != nil {
		t.Fatalf("diamond include must be clean: %v", err)
	}
	if strings.Count(out, "int shared;") != 1 {
		t.Errorf("include-once violated:\n%s", out)
	}
}

// TestIncludeDepthLimit asserts a deep (non-cyclic) chain stops with a clear
// error naming the chain rather than recursing unboundedly.
func TestIncludeDepthLimit(t *testing.T) {
	src := MapSource{}
	for i := 0; i < 100; i++ {
		src[hname(i)] = "#include \"" + hname(i+1) + "\"\n"
	}
	src[hname(100)] = "int bottom;\n"
	pp := New(src)
	_, err := pp.MergeText("main.c", "#include \""+hname(0)+"\"\n")
	if err == nil || !strings.Contains(err.Error(), "include depth exceeds") {
		t.Fatalf("want depth error, got %v", err)
	}
	if !strings.Contains(err.Error(), "chain:") {
		t.Errorf("depth error should show the include chain: %v", err)
	}
}

func hname(i int) string { return "h" + string(rune('a'+i/26)) + string(rune('a'+i%26)) + ".h" }

// TestSelfReferentialMacroBudget is the regression test for the exponential
// macro blowup: `#define A A A A` doubles (and worse) per expansion pass and
// previously could grow the merged output to gigabytes. The budget must stop
// it quickly with a classified error.
func TestSelfReferentialMacroBudget(t *testing.T) {
	pp := New(nil)
	pp.MaxExpansions = 10000
	start := time.Now()
	out, err := pp.MergeText("bomb.c", "#define A A A A A A A A A\nA\n")
	if err == nil {
		t.Fatal("macro bomb must report an error")
	}
	if !errors.Is(err, guard.ErrMacroBudget) {
		t.Errorf("error must classify as a budget violation: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("macro bomb took %v, budget not enforced early enough", elapsed)
	}
	if len(out) > 64*maxExpandedLine {
		t.Errorf("output grew to %d bytes despite budget", len(out))
	}
}

// TestMutuallyRecursiveFnMacros covers the function-like flavor of the bomb.
func TestMutuallyRecursiveFnMacros(t *testing.T) {
	pp := New(nil)
	pp.MaxExpansions = 1000
	_, err := pp.MergeText("bomb.c",
		"#define F(x) G(x) G(x)\n#define G(x) F(x) F(x)\nF(1)\n")
	if err == nil || !errors.Is(err, guard.ErrMacroBudget) {
		t.Fatalf("want budget error, got %v", err)
	}
}

// TestExpansionBudgetLeavesNormalCodeAlone asserts the default budget is
// far above what legitimate kernel-style units consume.
func TestExpansionBudgetLeavesNormalCodeAlone(t *testing.T) {
	pp := New(nil)
	src := "#define MASK(b) (1 << (b))\n#define ALL (MASK(0) | MASK(1) | MASK(2))\nint x = ALL;\n"
	out, err := pp.MergeText("ok.c", src)
	if err != nil {
		t.Fatalf("normal macros must not trip the budget: %v", err)
	}
	if !strings.Contains(out, "(1 << (0))") {
		t.Errorf("expansion broken:\n%s", out)
	}
}

// TestSharedBudgetMacroCharge asserts a guard.Budget wired into the
// preprocessor sees the expansions and can veto them.
func TestSharedBudgetMacroCharge(t *testing.T) {
	b := guard.NewBudget(nil, guard.Limits{MaxMacroExpansions: 3})
	pp := New(nil)
	pp.Budget = b
	_, err := pp.MergeText("x.c", "#define A 1\nA A A A A A\n")
	if err == nil || !errors.Is(err, guard.ErrMacroBudget) {
		t.Fatalf("shared budget must veto expansion, got %v", err)
	}
	if b.MacroExpansions() == 0 {
		t.Error("expansions not charged to the shared budget")
	}
}
