package cpp

import "testing"

// FuzzMergeText checks the preprocessor is total: any input yields either
// merged text or an error, never a panic or hang.
func FuzzMergeText(f *testing.F) {
	seeds := []string{
		"",
		"int x;\n",
		"#define A 1\nA\n",
		"#define F(a, b) ((a) + (b))\nF(1, F(2, 3))\n",
		"#ifdef A\nx\n#else\ny\n#endif\n",
		"#if 1 && defined(B)\nz\n#endif\n",
		"#include \"missing.h\"\n",
		"#include <sys/types.h>\n",
		"#else\n",
		"#define LOOP LOOP\nLOOP LOOP LOOP\n",
		"#define X(\n",
		"a \\\nb\n",
		"#if (1 < 2) || (3 == 3)\nok\n#endif\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pp := New(MapSource{})
		out, _ := pp.MergeText("fuzz.c", src)
		_ = out
	})
}
