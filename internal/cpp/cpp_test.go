package cpp

import (
	"strings"
	"testing"
)

func merge(t *testing.T, files map[string]string, main string) string {
	t.Helper()
	pp := New(MapSource(files))
	out, err := pp.Merge(main)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return out
}

func TestIncludeMergedOnce(t *testing.T) {
	out := merge(t, map[string]string{
		"main.c": "#include \"a.h\"\n#include \"a.h\"\nint main_fn;\n",
		"a.h":    "int from_a;\n",
	}, "main.c")
	if strings.Count(out, "from_a") != 1 {
		t.Fatalf("header included more than once:\n%s", out)
	}
	if !strings.Contains(out, "main_fn") {
		t.Fatalf("main body lost:\n%s", out)
	}
}

func TestNestedIncludes(t *testing.T) {
	out := merge(t, map[string]string{
		"main.c": "#include \"b.h\"\nint z;\n",
		"b.h":    "#include \"c.h\"\nint b;\n",
		"c.h":    "int c;\n",
	}, "main.c")
	// c must appear before b, b before z.
	ci, bi, zi := strings.Index(out, "int c"), strings.Index(out, "int b"), strings.Index(out, "int z")
	if !(ci < bi && bi < zi) {
		t.Fatalf("merge order wrong:\n%s", out)
	}
}

func TestMissingSystemHeaderTolerated(t *testing.T) {
	out := merge(t, map[string]string{
		"main.c": "#include <linux/kernel.h>\nint ok;\n",
	}, "main.c")
	if !strings.Contains(out, "int ok") {
		t.Fatal("body lost")
	}
}

func TestMissingLocalHeaderIsError(t *testing.T) {
	pp := New(MapSource{"main.c": "#include \"gone.h\"\n"})
	if _, err := pp.Merge("main.c"); err == nil {
		t.Fatal("expected error for missing local include")
	}
}

func TestObjectMacroExpansion(t *testing.T) {
	out := merge(t, map[string]string{
		"main.c": "#define MAX_ORDER 11\nint limit = MAX_ORDER;\n",
	}, "main.c")
	if !strings.Contains(out, "int limit = 11;") {
		t.Fatalf("macro not expanded:\n%s", out)
	}
}

func TestFunctionMacroExpansion(t *testing.T) {
	out := merge(t, map[string]string{
		"main.c": "#define MIN(a, b) ((a) < (b) ? (a) : (b))\nint v = MIN(x + 1, y);\n",
	}, "main.c")
	if !strings.Contains(out, "((x + 1) < (y) ? (x + 1) : (y))") {
		t.Fatalf("fn macro wrong:\n%s", out)
	}
}

func TestNestedMacroArgs(t *testing.T) {
	out := merge(t, map[string]string{
		"main.c": "#define ID(x) x\nint v = ID(f(a, b));\n",
	}, "main.c")
	if !strings.Contains(out, "int v = f(a, b);") {
		t.Fatalf("nested args wrong:\n%s", out)
	}
}

func TestRecursiveMacroBounded(t *testing.T) {
	// Self-referential macro must not hang.
	out := merge(t, map[string]string{
		"main.c": "#define LOOP LOOP\nint v = LOOP;\n",
	}, "main.c")
	if !strings.Contains(out, "LOOP") {
		t.Fatalf("expansion vanished:\n%s", out)
	}
}

func TestMacroNotExpandedInStrings(t *testing.T) {
	out := merge(t, map[string]string{
		"main.c": "#define X 5\nchar *s = \"X marks\";\nint v = X;\n",
	}, "main.c")
	if !strings.Contains(out, `"X marks"`) {
		t.Fatalf("macro expanded inside string:\n%s", out)
	}
	if !strings.Contains(out, "int v = 5;") {
		t.Fatalf("macro not expanded outside string:\n%s", out)
	}
}

func TestIfdefElseEndif(t *testing.T) {
	src := `#define CONFIG_NUMA 1
#ifdef CONFIG_NUMA
int numa_on;
#else
int numa_off;
#endif
#ifndef CONFIG_SMP
int up_only;
#endif
`
	out := merge(t, map[string]string{"main.c": src}, "main.c")
	if !strings.Contains(out, "numa_on") || strings.Contains(out, "numa_off") {
		t.Fatalf("ifdef wrong:\n%s", out)
	}
	if !strings.Contains(out, "up_only") {
		t.Fatalf("ifndef wrong:\n%s", out)
	}
}

func TestIfExpression(t *testing.T) {
	src := `#define LEVEL 3
#if LEVEL >= 2 && defined(LEVEL)
int high;
#elif LEVEL == 1
int low;
#else
int none;
#endif
#if !defined(MISSING)
int nomissing;
#endif
`
	out := merge(t, map[string]string{"main.c": src}, "main.c")
	if !strings.Contains(out, "int high") || strings.Contains(out, "int low") || strings.Contains(out, "int none") {
		t.Fatalf("#if chain wrong:\n%s", out)
	}
	if !strings.Contains(out, "nomissing") {
		t.Fatalf("!defined wrong:\n%s", out)
	}
}

func TestUndef(t *testing.T) {
	src := `#define F 1
#undef F
#ifdef F
int still;
#endif
int done;
`
	out := merge(t, map[string]string{"main.c": src}, "main.c")
	if strings.Contains(out, "still") {
		t.Fatalf("undef ignored:\n%s", out)
	}
}

func TestLineContinuation(t *testing.T) {
	src := "#define BIG(a) \\\n ((a) + 1)\nint v = BIG(2);\n"
	out := merge(t, map[string]string{"main.c": src}, "main.c")
	if !strings.Contains(out, "((2) + 1)") {
		t.Fatalf("continuation wrong:\n%s", out)
	}
}

func TestPredefines(t *testing.T) {
	pp := New(nil)
	pp.Define("CONFIG_X", "1")
	out, err := pp.MergeText("m.c", "#ifdef CONFIG_X\nint x;\n#endif\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int x") {
		t.Fatalf("predefine lost:\n%s", out)
	}
}

func TestUnterminatedIfIsError(t *testing.T) {
	pp := New(nil)
	if _, err := pp.MergeText("m.c", "#ifdef A\nint x;\n"); err == nil {
		t.Fatal("expected unterminated-#if error")
	}
}

func TestElseWithoutIfIsError(t *testing.T) {
	pp := New(nil)
	if _, err := pp.MergeText("m.c", "#else\n"); err == nil {
		t.Fatal("expected #else-without-#if error")
	}
}

func TestPragmaIgnored(t *testing.T) {
	pp := New(nil)
	out, err := pp.MergeText("m.c", "#pragma once\nint x;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int x") {
		t.Fatal("body lost")
	}
}

func TestFileSource(t *testing.T) {
	fs := FileSource{Dirs: []string{t.TempDir()}}
	if _, err := fs.Load("nope.h"); err == nil {
		t.Fatal("expected miss")
	}
}
