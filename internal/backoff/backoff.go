// Package backoff provides the retry delay curve shared by AnalyzeBatch and
// the cluster coordinator: exponential growth with full jitter.
//
// Full jitter (delay = rand(0, min(cap, base·2^(attempt-1)))) decorrelates
// retries across clients: when many workers fail at the same instant — a
// shared disk stall, a coordinator restart, a network partition healing —
// equal-jitter curves (d/2 + rand(d)) keep the fleet loosely synchronized
// around the midpoint and re-thundering the same herd at the recovering
// service, while full jitter spreads the retry instants uniformly over the
// whole window. The cost is a lower mean delay per attempt, which the
// exponential growth recovers within one extra round.
package backoff

import (
	"math/rand"
	"time"
)

// Cap bounds the exponential growth of the jitter window.
const Cap = 30 * time.Second

// Delay returns the pause before retrying after the given 1-based attempt:
// uniformly random in (0, min(Cap, base·2^(attempt-1))]. A non-positive base
// or attempt yields zero (retry immediately — callers that want no backoff
// pass base 0).
func Delay(base time.Duration, attempt int) time.Duration {
	if base <= 0 || attempt <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < Cap; i++ {
		d *= 2
	}
	if d > Cap {
		d = Cap
	}
	return time.Duration(1 + rand.Int63n(int64(d)))
}
