package backoff

import (
	"testing"
	"time"
)

// TestDelayWindow verifies the full-jitter contract: every sample falls in
// (0, min(Cap, base·2^(attempt-1))], with the window doubling per attempt.
func TestDelayWindow(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		max := base << (attempt - 1)
		if max > Cap {
			max = Cap
		}
		for i := 0; i < 200; i++ {
			d := Delay(base, attempt)
			if d <= 0 || d > max {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, max)
			}
		}
	}
}

// TestDelayCap verifies the window stops growing at Cap even for huge
// attempt counts (no overflow, no unbounded sleep).
func TestDelayCap(t *testing.T) {
	for i := 0; i < 200; i++ {
		if d := Delay(time.Second, 1000); d <= 0 || d > Cap {
			t.Fatalf("capped delay %v outside (0, %v]", d, Cap)
		}
	}
}

// TestDelayZeroBase: callers that opt out of backoff get zero, not a panic
// from rand.Int63n(0).
func TestDelayZeroBase(t *testing.T) {
	if d := Delay(0, 3); d != 0 {
		t.Fatalf("zero base: got %v, want 0", d)
	}
	if d := Delay(-time.Second, 3); d != 0 {
		t.Fatalf("negative base: got %v, want 0", d)
	}
	if d := Delay(time.Second, 0); d != 0 {
		t.Fatalf("attempt 0: got %v, want 0", d)
	}
}

// TestDelayJitters: full jitter must actually spread — 50 samples from the
// same window landing on one value would mean the jitter is broken.
func TestDelayJitters(t *testing.T) {
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[Delay(time.Second, 4)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("50 samples produced only %d distinct delays — not jittering", len(seen))
	}
}
