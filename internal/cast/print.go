package cast

import (
	"fmt"
	"strings"

	"pallas/internal/ctok"
)

// ExprString renders an expression as C source (canonical spacing).
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *IdentExpr:
		sb.WriteString(x.Name)
	case *IntExpr:
		sb.WriteString(x.Text)
	case *FloatExpr:
		sb.WriteString(x.Text)
	case *StrExpr:
		fmt.Fprintf(sb, "%q", x.Value)
	case *CharExpr:
		sb.WriteString("'" + x.Value + "'")
	case *UnaryExpr:
		if x.Op == ctok.KwSizeof {
			sb.WriteString("sizeof(")
			writeExpr(sb, x.X)
			sb.WriteString(")")
			return
		}
		sb.WriteString(unaryOpText(x.Op))
		if needsParens(x.X) {
			sb.WriteString("(")
			writeExpr(sb, x.X)
			sb.WriteString(")")
		} else {
			writeExpr(sb, x.X)
		}
	case *PostfixExpr:
		writeExpr(sb, x.X)
		sb.WriteString(x.Op.String())
	case *BinaryExpr:
		writeOperand(sb, x.L)
		sb.WriteString(" " + x.Op.String() + " ")
		writeOperand(sb, x.R)
	case *AssignExpr:
		writeExpr(sb, x.L)
		sb.WriteString(" " + x.Op.String() + " ")
		writeExpr(sb, x.R)
	case *CondExpr:
		writeOperand(sb, x.Cond)
		sb.WriteString(" ? ")
		writeOperand(sb, x.Then)
		sb.WriteString(" : ")
		writeOperand(sb, x.Else)
	case *CallExpr:
		writeExpr(sb, x.Fun)
		sb.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteString(")")
	case *MemberExpr:
		writeOperand(sb, x.X)
		if x.Arrow {
			sb.WriteString("->")
		} else {
			sb.WriteString(".")
		}
		sb.WriteString(x.Field)
	case *IndexExpr:
		writeOperand(sb, x.X)
		sb.WriteString("[")
		writeExpr(sb, x.Index)
		sb.WriteString("]")
	case *CastExpr:
		sb.WriteString("(" + x.Type.String() + ")")
		writeOperand(sb, x.X)
	case *SizeofTypeExpr:
		sb.WriteString("sizeof(" + x.Type.String() + ")")
	case *CommaExpr:
		writeExpr(sb, x.L)
		sb.WriteString(", ")
		writeExpr(sb, x.R)
	case *InitListExpr:
		sb.WriteString("{")
		for i, el := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, el)
		}
		sb.WriteString("}")
	default:
		fmt.Fprintf(sb, "<?expr %T>", e)
	}
}

func unaryOpText(k ctok.Kind) string {
	switch k {
	case ctok.Star:
		return "*"
	case ctok.Amp:
		return "&"
	default:
		return k.String()
	}
}

// writeOperand parenthesizes composite sub-expressions for readability.
func writeOperand(sb *strings.Builder, e Expr) {
	if needsParens(e) {
		sb.WriteString("(")
		writeExpr(sb, e)
		sb.WriteString(")")
		return
	}
	writeExpr(sb, e)
}

func needsParens(e Expr) bool {
	switch e.(type) {
	case *BinaryExpr, *CondExpr, *AssignExpr, *CommaExpr, *CastExpr:
		return true
	}
	return false
}

// StmtString renders a statement tree as indented C source.
func StmtString(s Stmt) string {
	var sb strings.Builder
	writeStmt(&sb, s, 0)
	return sb.String()
}

func indent(sb *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		sb.WriteString("\t")
	}
}

func writeStmt(sb *strings.Builder, s Stmt, depth int) {
	switch x := s.(type) {
	case nil:
		return
	case *DeclStmt:
		indent(sb, depth)
		sb.WriteString(x.Type.String() + " " + x.Name)
		if x.Init != nil {
			sb.WriteString(" = ")
			writeExpr(sb, x.Init)
		}
		sb.WriteString(";\n")
	case *ExprStmt:
		indent(sb, depth)
		writeExpr(sb, x.X)
		sb.WriteString(";\n")
	case *CompoundStmt:
		indent(sb, depth)
		sb.WriteString("{\n")
		for _, st := range x.Stmts {
			writeStmt(sb, st, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *IfStmt:
		indent(sb, depth)
		sb.WriteString("if (")
		writeExpr(sb, x.Cond)
		sb.WriteString(")\n")
		writeStmt(sb, x.Then, depth+blockExtra(x.Then))
		if x.Else != nil {
			indent(sb, depth)
			sb.WriteString("else\n")
			writeStmt(sb, x.Else, depth+blockExtra(x.Else))
		}
	case *WhileStmt:
		indent(sb, depth)
		sb.WriteString("while (")
		writeExpr(sb, x.Cond)
		sb.WriteString(")\n")
		writeStmt(sb, x.Body, depth+blockExtra(x.Body))
	case *DoWhileStmt:
		indent(sb, depth)
		sb.WriteString("do\n")
		writeStmt(sb, x.Body, depth+blockExtra(x.Body))
		indent(sb, depth)
		sb.WriteString("while (")
		writeExpr(sb, x.Cond)
		sb.WriteString(");\n")
	case *ForStmt:
		indent(sb, depth)
		sb.WriteString("for (")
		switch init := x.Init.(type) {
		case nil:
		case *DeclStmt:
			sb.WriteString(init.Type.String() + " " + init.Name)
			if init.Init != nil {
				sb.WriteString(" = ")
				writeExpr(sb, init.Init)
			}
		case *ExprStmt:
			writeExpr(sb, init.X)
		}
		sb.WriteString("; ")
		writeExpr(sb, x.Cond)
		sb.WriteString("; ")
		writeExpr(sb, x.Post)
		sb.WriteString(")\n")
		writeStmt(sb, x.Body, depth+blockExtra(x.Body))
	case *SwitchStmt:
		indent(sb, depth)
		sb.WriteString("switch (")
		writeExpr(sb, x.Tag)
		sb.WriteString(") {\n")
		for _, c := range x.Cases {
			if c.Values == nil {
				indent(sb, depth)
				sb.WriteString("default:\n")
			} else {
				for _, v := range c.Values {
					indent(sb, depth)
					sb.WriteString("case ")
					writeExpr(sb, v)
					sb.WriteString(":\n")
				}
			}
			for _, st := range c.Body {
				writeStmt(sb, st, depth+1)
			}
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *ReturnStmt:
		indent(sb, depth)
		sb.WriteString("return")
		if x.X != nil {
			sb.WriteString(" ")
			writeExpr(sb, x.X)
		}
		sb.WriteString(";\n")
	case *BreakStmt:
		indent(sb, depth)
		sb.WriteString("break;\n")
	case *ContinueStmt:
		indent(sb, depth)
		sb.WriteString("continue;\n")
	case *GotoStmt:
		indent(sb, depth)
		sb.WriteString("goto " + x.Label + ";\n")
	case *LabelStmt:
		indent(sb, max(depth-1, 0))
		sb.WriteString(x.Name + ":\n")
		writeStmt(sb, x.Stmt, depth)
	case *EmptyStmt:
		indent(sb, depth)
		sb.WriteString(";\n")
	default:
		indent(sb, depth)
		fmt.Fprintf(sb, "<?stmt %T>\n", s)
	}
}

// blockExtra returns 0 when the statement prints its own braces at the same
// depth, 1 when it should be indented as a simple body.
func blockExtra(s Stmt) int {
	if _, ok := s.(*CompoundStmt); ok {
		return 0
	}
	return 1
}

// DeclString renders a top-level declaration as C source.
func DeclString(d Decl) string {
	var sb strings.Builder
	switch x := d.(type) {
	case *FuncDecl:
		if x.Static {
			sb.WriteString("static ")
		}
		if x.Inline {
			sb.WriteString("inline ")
		}
		sb.WriteString(x.Ret.String() + " " + x.Name + "(")
		for i, p := range x.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.Type.String())
			if p.Name != "" {
				sb.WriteString(" " + p.Name)
			}
		}
		if x.Varargs {
			if len(x.Params) > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("...")
		}
		sb.WriteString(")")
		if x.Body == nil {
			sb.WriteString(";\n")
		} else {
			sb.WriteString("\n")
			writeStmt(&sb, x.Body, 0)
		}
	case *RecordDecl:
		kw := "struct"
		if x.Union {
			kw = "union"
		}
		sb.WriteString(kw + " " + x.Name + " {\n")
		for _, f := range x.Fields {
			sb.WriteString("\t" + f.Type.String() + " " + f.Name)
			if f.Bits > 0 {
				fmt.Fprintf(&sb, " : %d", f.Bits)
			}
			sb.WriteString(";\n")
		}
		sb.WriteString("};\n")
	case *EnumDecl:
		sb.WriteString("enum " + x.Name + " {\n")
		for _, m := range x.Members {
			fmt.Fprintf(&sb, "\t%s = %d,\n", m.Name, m.Value)
		}
		sb.WriteString("};\n")
	case *TypedefDecl:
		sb.WriteString("typedef " + x.Type.String() + " " + x.Name + ";\n")
	case *VarDecl:
		if x.Extern {
			sb.WriteString("extern ")
		}
		if x.Static {
			sb.WriteString("static ")
		}
		sb.WriteString(x.Type.String() + " " + x.Name)
		if x.Init != nil {
			sb.WriteString(" = ")
			writeExpr(&sb, x.Init)
		}
		sb.WriteString(";\n")
	}
	return sb.String()
}
