// Package cast defines the abstract syntax tree for the Pallas C subset and
// helpers for walking and printing it.
package cast

import (
	"pallas/internal/ctok"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() ctok.Pos
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

// Type describes a (possibly derived) C type. Pallas does not need full type
// checking; it records enough structure for field-sensitivity and layout
// estimation (rule 5.1 reasons about struct field sizes).
type Type struct {
	// Name is the base type spelling: "int", "unsigned long", "struct page",
	// "gfp_t" (typedef), "void", ...
	Name string
	// Stars is the pointer depth (e.g. 2 for "struct page **").
	Stars int
	// ArrayLens holds sizes of array dimensions; -1 for unsized ([]).
	ArrayLens []int
	// Const records a const qualifier anywhere in the declaration.
	Const bool
}

// String renders the type roughly as C source.
func (t Type) String() string {
	s := t.Name
	if t.Const {
		s = "const " + s
	}
	for i := 0; i < t.Stars; i++ {
		s += "*"
	}
	for _, n := range t.ArrayLens {
		if n < 0 {
			s += "[]"
		} else {
			s += arraySuffix(n)
		}
	}
	return s
}

func arraySuffix(n int) string {
	// small helper to avoid fmt in the hot path
	if n == 0 {
		return "[0]"
	}
	digits := 0
	for v := n; v > 0; v /= 10 {
		digits++
	}
	buf := make([]byte, digits+2)
	buf[0] = '['
	buf[len(buf)-1] = ']'
	for i, v := digits, n; v > 0; v /= 10 {
		buf[i] = byte('0' + v%10)
		i--
	}
	return string(buf)
}

// IsPointer reports whether the type is a pointer.
func (t Type) IsPointer() bool { return t.Stars > 0 }

// SizeOf estimates the byte size of the type on x86-64 (rule 5.1 uses this to
// reason about cache-line footprint). Unknown types count as 8.
func (t Type) SizeOf() int {
	if t.Stars > 0 {
		return 8
	}
	var base int
	switch t.Name {
	case "char", "signed char", "unsigned char", "bool", "u8", "s8", "uint8_t", "int8_t":
		base = 1
	case "short", "unsigned short", "u16", "s16", "uint16_t", "int16_t":
		base = 2
	case "int", "unsigned", "unsigned int", "float", "u32", "s32", "uint32_t", "int32_t", "gfp_t", "pid_t":
		base = 4
	case "long", "unsigned long", "long long", "unsigned long long", "double",
		"u64", "s64", "uint64_t", "int64_t", "size_t", "ssize_t", "loff_t", "sector_t", "dma_addr_t":
		base = 8
	case "void":
		base = 0
	default:
		base = 8
	}
	n := base
	for _, l := range t.ArrayLens {
		if l > 0 {
			n *= l
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IdentExpr is a variable or function reference.
type IdentExpr struct {
	Name string
	P    ctok.Pos
}

// IntExpr is an integer literal.
type IntExpr struct {
	Text  string // original spelling
	Value int64
	P     ctok.Pos
}

// FloatExpr is a floating literal.
type FloatExpr struct {
	Text string
	P    ctok.Pos
}

// StrExpr is a string literal.
type StrExpr struct {
	Value string
	P     ctok.Pos
}

// CharExpr is a character literal.
type CharExpr struct {
	Value string
	P     ctok.Pos
}

// UnaryExpr is a prefix operator: ! ~ - + * & ++ -- sizeof.
type UnaryExpr struct {
	Op ctok.Kind
	X  Expr
	P  ctok.Pos
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op ctok.Kind // Inc or Dec
	X  Expr
	P  ctok.Pos
}

// BinaryExpr is a binary operator application.
type BinaryExpr struct {
	Op   ctok.Kind
	L, R Expr
	P    ctok.Pos
}

// AssignExpr is an assignment, possibly compound (+= etc.).
type AssignExpr struct {
	Op   ctok.Kind // Assign, AddAssign, ...
	L, R Expr
	P    ctok.Pos
}

// CondExpr is the ternary operator c ? t : f.
type CondExpr struct {
	Cond, Then, Else Expr
	P                ctok.Pos
}

// CallExpr is a function call.
type CallExpr struct {
	Fun  Expr // usually *IdentExpr
	Args []Expr
	P    ctok.Pos
}

// MemberExpr is x.field or x->field.
type MemberExpr struct {
	X     Expr
	Field string
	Arrow bool // true for ->
	P     ctok.Pos
}

// IndexExpr is x[i].
type IndexExpr struct {
	X, Index Expr
	P        ctok.Pos
}

// CastExpr is (type)x.
type CastExpr struct {
	Type Type
	X    Expr
	P    ctok.Pos
}

// SizeofTypeExpr is sizeof(type).
type SizeofTypeExpr struct {
	Type Type
	P    ctok.Pos
}

// CommaExpr is "a, b" (sequence).
type CommaExpr struct {
	L, R Expr
	P    ctok.Pos
}

// InitListExpr is a brace initializer { a, b, ... }.
type InitListExpr struct {
	Elems []Expr
	P     ctok.Pos
}

func (e *IdentExpr) Pos() ctok.Pos      { return e.P }
func (e *IntExpr) Pos() ctok.Pos        { return e.P }
func (e *FloatExpr) Pos() ctok.Pos      { return e.P }
func (e *StrExpr) Pos() ctok.Pos        { return e.P }
func (e *CharExpr) Pos() ctok.Pos       { return e.P }
func (e *UnaryExpr) Pos() ctok.Pos      { return e.P }
func (e *PostfixExpr) Pos() ctok.Pos    { return e.P }
func (e *BinaryExpr) Pos() ctok.Pos     { return e.P }
func (e *AssignExpr) Pos() ctok.Pos     { return e.P }
func (e *CondExpr) Pos() ctok.Pos       { return e.P }
func (e *CallExpr) Pos() ctok.Pos       { return e.P }
func (e *MemberExpr) Pos() ctok.Pos     { return e.P }
func (e *IndexExpr) Pos() ctok.Pos      { return e.P }
func (e *CastExpr) Pos() ctok.Pos       { return e.P }
func (e *SizeofTypeExpr) Pos() ctok.Pos { return e.P }
func (e *CommaExpr) Pos() ctok.Pos      { return e.P }
func (e *InitListExpr) Pos() ctok.Pos   { return e.P }

func (*IdentExpr) exprNode()      {}
func (*IntExpr) exprNode()        {}
func (*FloatExpr) exprNode()      {}
func (*StrExpr) exprNode()        {}
func (*CharExpr) exprNode()       {}
func (*UnaryExpr) exprNode()      {}
func (*PostfixExpr) exprNode()    {}
func (*BinaryExpr) exprNode()     {}
func (*AssignExpr) exprNode()     {}
func (*CondExpr) exprNode()       {}
func (*CallExpr) exprNode()       {}
func (*MemberExpr) exprNode()     {}
func (*IndexExpr) exprNode()      {}
func (*CastExpr) exprNode()       {}
func (*SizeofTypeExpr) exprNode() {}
func (*CommaExpr) exprNode()      {}
func (*InitListExpr) exprNode()   {}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// DeclStmt is a local declaration, possibly with an initializer.
type DeclStmt struct {
	Type Type
	Name string
	Init Expr // may be nil
	P    ctok.Pos
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	X Expr
	P ctok.Pos
}

// CompoundStmt is a { ... } block.
type CompoundStmt struct {
	Stmts []Stmt
	P     ctok.Pos
}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	P    ctok.Pos
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	P    ctok.Pos
}

// DoWhileStmt is do Body while (Cond);
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	P    ctok.Pos
}

// ForStmt is for (Init; Cond; Post) Body. Init may be a DeclStmt or ExprStmt.
type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
	P    ctok.Pos
}

// SwitchStmt is switch (Tag) { cases }.
type SwitchStmt struct {
	Tag   Expr
	Cases []*CaseClause
	P     ctok.Pos
}

// CaseClause is one case/default arm of a switch.
type CaseClause struct {
	Values []Expr // nil for default
	Body   []Stmt
	P      ctok.Pos
}

// ReturnStmt is return [expr];
type ReturnStmt struct {
	X Expr // may be nil
	P ctok.Pos
}

// BreakStmt is break;
type BreakStmt struct{ P ctok.Pos }

// ContinueStmt is continue;
type ContinueStmt struct{ P ctok.Pos }

// GotoStmt is goto label;
type GotoStmt struct {
	Label string
	P     ctok.Pos
}

// LabelStmt is label: stmt.
type LabelStmt struct {
	Name string
	Stmt Stmt // may be nil when label precedes '}'
	P    ctok.Pos
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ P ctok.Pos }

func (s *DeclStmt) Pos() ctok.Pos     { return s.P }
func (s *ExprStmt) Pos() ctok.Pos     { return s.P }
func (s *CompoundStmt) Pos() ctok.Pos { return s.P }
func (s *IfStmt) Pos() ctok.Pos       { return s.P }
func (s *WhileStmt) Pos() ctok.Pos    { return s.P }
func (s *DoWhileStmt) Pos() ctok.Pos  { return s.P }
func (s *ForStmt) Pos() ctok.Pos      { return s.P }
func (s *SwitchStmt) Pos() ctok.Pos   { return s.P }
func (s *CaseClause) Pos() ctok.Pos   { return s.P }
func (s *ReturnStmt) Pos() ctok.Pos   { return s.P }
func (s *BreakStmt) Pos() ctok.Pos    { return s.P }
func (s *ContinueStmt) Pos() ctok.Pos { return s.P }
func (s *GotoStmt) Pos() ctok.Pos     { return s.P }
func (s *LabelStmt) Pos() ctok.Pos    { return s.P }
func (s *EmptyStmt) Pos() ctok.Pos    { return s.P }

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*CompoundStmt) stmtNode() {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*GotoStmt) stmtNode()     {}
func (*LabelStmt) stmtNode()    {}
func (*EmptyStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Top-level declarations
// ---------------------------------------------------------------------------

// Param is one function parameter.
type Param struct {
	Type Type
	Name string // may be "" in prototypes
	P    ctok.Pos
}

// FuncDecl is a function definition or prototype (Body == nil).
type FuncDecl struct {
	Ret     Type
	Name    string
	Params  []Param
	Varargs bool
	Body    *CompoundStmt // nil for prototypes
	Static  bool
	Inline  bool
	P       ctok.Pos
}

// Field is one struct/union member.
type Field struct {
	Type Type
	Name string
	Bits int // bit-field width, 0 if none
	P    ctok.Pos
}

// RecordDecl is a struct or union definition.
type RecordDecl struct {
	Union  bool
	Name   string // tag; "" for anonymous
	Fields []Field
	P      ctok.Pos
}

// EnumDecl is an enum definition.
type EnumDecl struct {
	Name    string
	Members []EnumMember
	P       ctok.Pos
}

// EnumMember is one enumerator with its resolved value.
type EnumMember struct {
	Name  string
	Value int64
	P     ctok.Pos
}

// TypedefDecl is a typedef.
type TypedefDecl struct {
	Name string
	Type Type
	P    ctok.Pos
}

// VarDecl is a global variable declaration.
type VarDecl struct {
	Type   Type
	Name   string
	Init   Expr // may be nil
	Static bool
	Extern bool
	P      ctok.Pos
}

func (d *FuncDecl) Pos() ctok.Pos    { return d.P }
func (d *RecordDecl) Pos() ctok.Pos  { return d.P }
func (d *EnumDecl) Pos() ctok.Pos    { return d.P }
func (d *TypedefDecl) Pos() ctok.Pos { return d.P }
func (d *VarDecl) Pos() ctok.Pos     { return d.P }

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

func (*FuncDecl) declNode()    {}
func (*RecordDecl) declNode()  {}
func (*EnumDecl) declNode()    {}
func (*TypedefDecl) declNode() {}
func (*VarDecl) declNode()     {}

// Annotation is a structured `@pallas:` comment found in the source.
type Annotation struct {
	Text string // the annotation payload after "@pallas:"
	P    ctok.Pos
}

// TranslationUnit is one parsed (pre-merged) source file.
type TranslationUnit struct {
	File        string
	Decls       []Decl
	Annotations []Annotation
}

// Pos implements Node; it reports the position of the first declaration.
func (tu *TranslationUnit) Pos() ctok.Pos {
	if len(tu.Decls) > 0 {
		return tu.Decls[0].Pos()
	}
	return ctok.Pos{File: tu.File, Line: 1, Col: 1}
}

// Funcs returns the function definitions (with bodies) in declaration order.
func (tu *TranslationUnit) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range tu.Decls {
		if f, ok := d.(*FuncDecl); ok && f.Body != nil {
			out = append(out, f)
		}
	}
	return out
}

// Func returns the function definition with the given name, or nil.
func (tu *TranslationUnit) Func(name string) *FuncDecl {
	for _, d := range tu.Decls {
		if f, ok := d.(*FuncDecl); ok && f.Name == name && f.Body != nil {
			return f
		}
	}
	return nil
}

// Record returns the struct/union with the given tag, or nil.
func (tu *TranslationUnit) Record(tag string) *RecordDecl {
	for _, d := range tu.Decls {
		if r, ok := d.(*RecordDecl); ok && r.Name == tag {
			return r
		}
	}
	return nil
}

// Globals returns the global variable declarations.
func (tu *TranslationUnit) Globals() []*VarDecl {
	var out []*VarDecl
	for _, d := range tu.Decls {
		if v, ok := d.(*VarDecl); ok {
			out = append(out, v)
		}
	}
	return out
}

// EnumValue looks up an enumerator value by name.
func (tu *TranslationUnit) EnumValue(name string) (int64, bool) {
	for _, d := range tu.Decls {
		if e, ok := d.(*EnumDecl); ok {
			for _, m := range e.Members {
				if m.Name == name {
					return m.Value, true
				}
			}
		}
	}
	return 0, false
}
