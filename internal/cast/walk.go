package cast

import "pallas/internal/ctok"

// Walk traverses the AST rooted at n in depth-first order, calling fn for each
// node. If fn returns false the children of the node are not visited.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	// Expressions.
	case *UnaryExpr:
		Walk(x.X, fn)
	case *PostfixExpr:
		Walk(x.X, fn)
	case *BinaryExpr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *AssignExpr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *CondExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *CallExpr:
		Walk(x.Fun, fn)
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *MemberExpr:
		Walk(x.X, fn)
	case *IndexExpr:
		Walk(x.X, fn)
		Walk(x.Index, fn)
	case *CastExpr:
		Walk(x.X, fn)
	case *CommaExpr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *InitListExpr:
		for _, e := range x.Elems {
			Walk(e, fn)
		}

	// Statements.
	case *DeclStmt:
		Walk(x.Init, fn)
	case *ExprStmt:
		Walk(x.X, fn)
	case *CompoundStmt:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *DoWhileStmt:
		Walk(x.Body, fn)
		Walk(x.Cond, fn)
	case *ForStmt:
		Walk(x.Init, fn)
		Walk(x.Cond, fn)
		Walk(x.Post, fn)
		Walk(x.Body, fn)
	case *SwitchStmt:
		Walk(x.Tag, fn)
		for _, c := range x.Cases {
			Walk(c, fn)
		}
	case *CaseClause:
		for _, v := range x.Values {
			Walk(v, fn)
		}
		for _, s := range x.Body {
			Walk(s, fn)
		}
	case *ReturnStmt:
		Walk(x.X, fn)
	case *LabelStmt:
		Walk(x.Stmt, fn)

	// Declarations.
	case *FuncDecl:
		Walk(x.Body, fn)
	case *VarDecl:
		Walk(x.Init, fn)
	case *TranslationUnit:
		for _, d := range x.Decls {
			Walk(d, fn)
		}
	}
}

// Idents collects the distinct identifier names referenced in the subtree,
// in first-appearance order.
func Idents(n Node) []string {
	seen := map[string]bool{}
	var out []string
	Walk(n, func(m Node) bool {
		if id, ok := m.(*IdentExpr); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

// UsesIdent reports whether the subtree references the identifier name.
func UsesIdent(n Node, name string) bool {
	found := false
	Walk(n, func(m Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*IdentExpr); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// UsesField reports whether the subtree contains a member access to field.
func UsesField(n Node, field string) bool {
	found := false
	Walk(n, func(m Node) bool {
		if found {
			return false
		}
		if me, ok := m.(*MemberExpr); ok && me.Field == field {
			found = true
			return false
		}
		return true
	})
	return found
}

// Calls collects the names of directly-called functions in the subtree,
// in first-appearance order (duplicates removed).
func Calls(n Node) []string {
	seen := map[string]bool{}
	var out []string
	Walk(n, func(m Node) bool {
		if c, ok := m.(*CallExpr); ok {
			if id, ok := c.Fun.(*IdentExpr); ok && !seen[id.Name] {
				seen[id.Name] = true
				out = append(out, id.Name)
			}
		}
		return true
	})
	return out
}

// RootIdent returns the base identifier of an lvalue expression:
// a, a.b, a->b, a[i].c all yield "a". Returns "" if none.
func RootIdent(e Expr) string {
	for {
		switch x := e.(type) {
		case *IdentExpr:
			return x.Name
		case *MemberExpr:
			e = x.X
		case *IndexExpr:
			e = x.X
		case *UnaryExpr:
			if x.Op == ctok.Star || x.Op == ctok.Amp {
				e = x.X
				continue
			}
			return ""
		case *CastExpr:
			e = x.X
		case *CommaExpr:
			e = x.R
		default:
			return ""
		}
	}
}
