package cast

import (
	"strings"
	"testing"

	"pallas/internal/ctok"
)

func id(n string) *IdentExpr { return &IdentExpr{Name: n} }

func TestTypeString(t *testing.T) {
	cases := []struct {
		ty   Type
		want string
	}{
		{Type{Name: "int"}, "int"},
		{Type{Name: "struct page", Stars: 1}, "struct page*"},
		{Type{Name: "char", Stars: 2}, "char**"},
		{Type{Name: "int", ArrayLens: []int{32}}, "int[32]"},
		{Type{Name: "int", ArrayLens: []int{-1}}, "int[]"},
		{Type{Name: "int", Const: true}, "const int"},
		{Type{Name: "u8", ArrayLens: []int{0}}, "u8[0]"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("%+v: %q, want %q", c.ty, got, c.want)
		}
	}
}

func TestTypeSizeOf(t *testing.T) {
	cases := []struct {
		ty   Type
		want int
	}{
		{Type{Name: "char"}, 1},
		{Type{Name: "short"}, 2},
		{Type{Name: "int"}, 4},
		{Type{Name: "long"}, 8},
		{Type{Name: "struct page", Stars: 1}, 8}, // pointer
		{Type{Name: "int", ArrayLens: []int{8}}, 32},
		{Type{Name: "struct opaque"}, 8}, // unknown default
		{Type{Name: "void"}, 0},
	}
	for _, c := range cases {
		if got := c.ty.SizeOf(); got != c.want {
			t.Errorf("%s: size %d, want %d", c.ty, got, c.want)
		}
	}
}

func TestExprString(t *testing.T) {
	e := &BinaryExpr{
		Op: ctok.AndAnd,
		L:  &BinaryExpr{Op: ctok.EqEq, L: id("order"), R: &IntExpr{Text: "0", Value: 0}},
		R:  &UnaryExpr{Op: ctok.Not, X: id("table")},
	}
	if got := ExprString(e); got != "(order == 0) && !table" {
		t.Errorf("got %q", got)
	}
	m := &MemberExpr{X: id("page"), Field: "private", Arrow: true}
	if got := ExprString(m); got != "page->private" {
		t.Errorf("member = %q", got)
	}
	c := &CallExpr{Fun: id("f"), Args: []Expr{id("a"), &IntExpr{Text: "1", Value: 1}}}
	if got := ExprString(c); got != "f(a, 1)" {
		t.Errorf("call = %q", got)
	}
	ix := &IndexExpr{X: id("cpus"), Index: &IntExpr{Text: "0"}}
	if got := ExprString(ix); got != "cpus[0]" {
		t.Errorf("index = %q", got)
	}
	deref := &UnaryExpr{Op: ctok.Star, X: id("p")}
	if got := ExprString(deref); got != "*p" {
		t.Errorf("deref = %q", got)
	}
	addr := &UnaryExpr{Op: ctok.Amp, X: id("x")}
	if got := ExprString(addr); got != "&x" {
		t.Errorf("addr = %q", got)
	}
	cond := &CondExpr{Cond: id("c"), Then: id("a"), Else: id("b")}
	if got := ExprString(cond); got != "c ? a : b" {
		t.Errorf("ternary = %q", got)
	}
}

func TestRootIdent(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{id("a"), "a"},
		{&MemberExpr{X: id("a"), Field: "b", Arrow: true}, "a"},
		{&IndexExpr{X: &MemberExpr{X: id("a"), Field: "b"}, Index: id("i")}, "a"},
		{&UnaryExpr{Op: ctok.Star, X: id("p")}, "p"},
		{&CastExpr{Type: Type{Name: "int"}, X: id("x")}, "x"},
		{&IntExpr{Text: "3", Value: 3}, ""},
	}
	for _, c := range cases {
		if got := RootIdent(c.e); got != c.want {
			t.Errorf("RootIdent(%s) = %q, want %q", ExprString(c.e), got, c.want)
		}
	}
}

func TestIdentsOrderAndDedup(t *testing.T) {
	e := &BinaryExpr{Op: ctok.Plus,
		L: &BinaryExpr{Op: ctok.Plus, L: id("b"), R: id("a")},
		R: id("b")}
	got := Idents(e)
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("idents = %v", got)
	}
}

func TestUsesIdentAndField(t *testing.T) {
	e := &MemberExpr{X: id("inode"), Field: "i_state", Arrow: true}
	if !UsesIdent(e, "inode") || UsesIdent(e, "i_state") {
		t.Error("UsesIdent confuses fields with idents")
	}
	if !UsesField(e, "i_state") || UsesField(e, "inode") {
		t.Error("UsesField confuses idents with fields")
	}
}

func TestCalls(t *testing.T) {
	s := &CompoundStmt{Stmts: []Stmt{
		&ExprStmt{X: &CallExpr{Fun: id("lock")}},
		&ExprStmt{X: &CallExpr{Fun: id("unlock")}},
		&ExprStmt{X: &CallExpr{Fun: id("lock")}},
	}}
	got := Calls(s)
	if len(got) != 2 || got[0] != "lock" || got[1] != "unlock" {
		t.Errorf("calls = %v", got)
	}
}

func TestWalkPrune(t *testing.T) {
	e := &BinaryExpr{Op: ctok.Plus, L: id("a"), R: id("b")}
	visited := 0
	Walk(e, func(Node) bool {
		visited++
		return false // prune immediately
	})
	if visited != 1 {
		t.Errorf("visited %d nodes after prune, want 1", visited)
	}
}

func TestStmtStringShapes(t *testing.T) {
	s := &IfStmt{
		Cond: id("x"),
		Then: &ReturnStmt{X: &IntExpr{Text: "1", Value: 1}},
		Else: &CompoundStmt{Stmts: []Stmt{&BreakStmt{}}},
	}
	out := StmtString(s)
	for _, want := range []string{"if (x)", "return 1;", "else", "break;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	sw := &SwitchStmt{Tag: id("v"), Cases: []*CaseClause{
		{Values: []Expr{&IntExpr{Text: "1", Value: 1}}, Body: []Stmt{&BreakStmt{}}},
		{Values: nil, Body: []Stmt{&ReturnStmt{}}},
	}}
	out = StmtString(sw)
	for _, want := range []string{"switch (v)", "case 1:", "default:", "return;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDeclString(t *testing.T) {
	f := &FuncDecl{
		Ret: Type{Name: "int"}, Name: "f", Static: true,
		Params: []Param{{Type: Type{Name: "int"}, Name: "a"}},
		Body:   &CompoundStmt{Stmts: []Stmt{&ReturnStmt{X: id("a")}}},
	}
	out := DeclString(f)
	if !strings.Contains(out, "static int f(int a)") || !strings.Contains(out, "return a;") {
		t.Errorf("func decl:\n%s", out)
	}
	r := &RecordDecl{Name: "page", Fields: []Field{
		{Type: Type{Name: "unsigned long"}, Name: "flags"},
		{Type: Type{Name: "int"}, Name: "bits", Bits: 4},
	}}
	out = DeclString(r)
	if !strings.Contains(out, "struct page {") || !strings.Contains(out, "bits : 4;") {
		t.Errorf("record decl:\n%s", out)
	}
	v := &VarDecl{Type: Type{Name: "int"}, Name: "g", Init: &IntExpr{Text: "3", Value: 3}, Static: true}
	if out := DeclString(v); !strings.Contains(out, "static int g = 3;") {
		t.Errorf("var decl: %s", out)
	}
}

func TestTranslationUnitHelpers(t *testing.T) {
	tu := &TranslationUnit{File: "t.c", Decls: []Decl{
		&EnumDecl{Name: "e", Members: []EnumMember{{Name: "A", Value: 7}},
			P: ctok.Pos{File: "t.c", Line: 1, Col: 1}},
		&VarDecl{Type: Type{Name: "int"}, Name: "g"},
		&FuncDecl{Ret: Type{Name: "int"}, Name: "f", Body: &CompoundStmt{}},
		&FuncDecl{Ret: Type{Name: "int"}, Name: "proto"},
		&RecordDecl{Name: "page"},
	}}
	if tu.Func("f") == nil || tu.Func("proto") != nil || tu.Func("zzz") != nil {
		t.Error("Func lookup wrong")
	}
	if len(tu.Funcs()) != 1 {
		t.Error("Funcs should exclude prototypes")
	}
	if tu.Record("page") == nil || tu.Record("zone") != nil {
		t.Error("Record lookup wrong")
	}
	if len(tu.Globals()) != 1 {
		t.Error("Globals wrong")
	}
	if v, ok := tu.EnumValue("A"); !ok || v != 7 {
		t.Error("EnumValue wrong")
	}
	if _, ok := tu.EnumValue("B"); ok {
		t.Error("EnumValue false positive")
	}
	if !tu.Pos().IsValid() {
		t.Error("Pos invalid")
	}
}

func TestExprStringRemainingNodes(t *testing.T) {
	comma := &CommaExpr{L: id("a"), R: id("b")}
	if got := ExprString(comma); got != "a, b" {
		t.Errorf("comma = %q", got)
	}
	il := &InitListExpr{Elems: []Expr{&IntExpr{Text: "1", Value: 1}, &IntExpr{Text: "2", Value: 2}}}
	if got := ExprString(il); got != "{1, 2}" {
		t.Errorf("initlist = %q", got)
	}
	cast := &CastExpr{Type: Type{Name: "unsigned long"}, X: id("x")}
	if got := ExprString(cast); got != "(unsigned long)x" {
		t.Errorf("cast = %q", got)
	}
	st := &SizeofTypeExpr{Type: Type{Name: "struct page", Stars: 1}}
	if got := ExprString(st); got != "sizeof(struct page*)" {
		t.Errorf("sizeof = %q", got)
	}
	sz := &UnaryExpr{Op: ctok.KwSizeof, X: id("v")}
	if got := ExprString(sz); got != "sizeof(v)" {
		t.Errorf("sizeof expr = %q", got)
	}
	pf := &PostfixExpr{Op: ctok.Inc, X: id("i")}
	if got := ExprString(pf); got != "i++" {
		t.Errorf("postfix = %q", got)
	}
	as := &AssignExpr{Op: ctok.AddAssign, L: id("s"), R: id("d")}
	if got := ExprString(as); got != "s += d" {
		t.Errorf("assign = %q", got)
	}
	str := &StrExpr{Value: "hi"}
	if got := ExprString(str); got != `"hi"` {
		t.Errorf("string = %q", got)
	}
	ch := &CharExpr{Value: "c"}
	if got := ExprString(ch); got != "'c'" {
		t.Errorf("char = %q", got)
	}
	fl := &FloatExpr{Text: "2.5"}
	if got := ExprString(fl); got != "2.5" {
		t.Errorf("float = %q", got)
	}
}

func TestStmtStringRemainingNodes(t *testing.T) {
	w := &WhileStmt{Cond: id("c"), Body: &ContinueStmt{}}
	if out := StmtString(w); !strings.Contains(out, "while (c)") || !strings.Contains(out, "continue;") {
		t.Errorf("while:\n%s", out)
	}
	dw := &DoWhileStmt{Body: &EmptyStmt{}, Cond: id("c")}
	if out := StmtString(dw); !strings.Contains(out, "do") || !strings.Contains(out, "while (c);") {
		t.Errorf("do-while:\n%s", out)
	}
	f := &ForStmt{
		Init: &DeclStmt{Type: Type{Name: "int"}, Name: "i", Init: &IntExpr{Text: "0"}},
		Cond: &BinaryExpr{Op: ctok.Lt, L: id("i"), R: id("n")},
		Post: &PostfixExpr{Op: ctok.Inc, X: id("i")},
		Body: &GotoStmt{Label: "out"},
	}
	out := StmtString(f)
	if !strings.Contains(out, "for (int i = 0; i < n; i++)") || !strings.Contains(out, "goto out;") {
		t.Errorf("for:\n%s", out)
	}
	lb := &LabelStmt{Name: "out", Stmt: &ReturnStmt{}}
	if out := StmtString(lb); !strings.Contains(out, "out:") {
		t.Errorf("label:\n%s", out)
	}
}

func TestDeclStringRemainingNodes(t *testing.T) {
	td := &TypedefDecl{Name: "u64x", Type: Type{Name: "unsigned long long"}}
	if out := DeclString(td); !strings.Contains(out, "typedef unsigned long long u64x;") {
		t.Errorf("typedef: %s", out)
	}
	en := &EnumDecl{Name: "modes", Members: []EnumMember{{Name: "A", Value: 1}}}
	if out := DeclString(en); !strings.Contains(out, "enum modes") || !strings.Contains(out, "A = 1,") {
		t.Errorf("enum: %s", out)
	}
	un := &RecordDecl{Union: true, Name: "u", Fields: []Field{{Type: Type{Name: "int"}, Name: "raw"}}}
	if out := DeclString(un); !strings.Contains(out, "union u {") {
		t.Errorf("union: %s", out)
	}
	proto := &FuncDecl{Ret: Type{Name: "void"}, Name: "p", Varargs: true,
		Params: []Param{{Type: Type{Name: "int"}, Name: "a"}}}
	if out := DeclString(proto); !strings.Contains(out, "void p(int a, ...);") {
		t.Errorf("proto: %s", out)
	}
	ext := &VarDecl{Type: Type{Name: "int"}, Name: "g", Extern: true}
	if out := DeclString(ext); !strings.Contains(out, "extern int g;") {
		t.Errorf("extern: %s", out)
	}
}
