package pallas_test

// Benchmark harness: one benchmark per paper table and figure (regenerating
// the artifact end to end), plus micro-benchmarks for the pipeline stages
// (preprocess, parse, CFG, path extraction, checking). Run with
//
//	go test -bench=. -benchmem
//
// The per-table benches exercise exactly the code paths cmd/pallas-eval runs;
// custom metrics report the reproduced headline numbers (bugs, warnings,
// accuracy) so a bench run doubles as a results check.

import (
	"pallas"
	"testing"

	"pallas/internal/cfg"
	"pallas/internal/corpus"
	"pallas/internal/cparse"
	"pallas/internal/eval"
	"pallas/internal/paths"
	"pallas/internal/study"
)

// BenchmarkTable1Detection reruns the full corpus (224 fast-path cases)
// through all five checkers — the paper's headline experiment.
func BenchmarkTable1Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.TotalBugs), "bugs")
			b.ReportMetric(float64(res.TotalWarnings), "warnings")
			b.ReportMetric(res.Accuracy()*100, "accuracy%")
		}
	}
}

// BenchmarkTable2Study recomputes the fast-path population statistics.
func BenchmarkTable2Study(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := study.Table2(study.Dataset())
		if len(rows) != 4 {
			b.Fatal("bad table 2")
		}
	}
}

// BenchmarkTable3Distribution recomputes the category distribution.
func BenchmarkTable3Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t3 := study.Table3(study.Dataset())
		if len(t3) != 4 {
			b.Fatal("bad table 3")
		}
	}
}

// BenchmarkTable4Consequences recomputes the consequence matrix.
func BenchmarkTable4Consequences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t4 := study.Table4(study.Dataset())
		if len(t4) != 5 {
			b.Fatal("bad table 4")
		}
	}
}

// BenchmarkTable5Extraction regenerates the symbolic-extraction example.
func BenchmarkTable5Extraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunTable5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Inventory renders the software inventory.
func BenchmarkTable6Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if eval.RenderTable6() == "" {
			b.Fatal("empty table 6")
		}
	}
}

// BenchmarkTable7NewBugs re-detects the 34 Table-7 bugs.
func BenchmarkTable7NewBugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTable7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Detected)), "detected")
			b.ReportMetric(res.MeanLatentYears, "latent-years")
		}
	}
}

// BenchmarkTable8Completeness reruns the 62-bug injection experiment.
func BenchmarkTable8Completeness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTable8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Detected), "detected")
			b.ReportMetric(float64(res.Total), "total")
		}
	}
}

// BenchmarkFigure1Workflows renders the three motivating workflows.
func BenchmarkFigure1Workflows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2KeyElements renders the key-element model.
func BenchmarkFigure2KeyElements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure(2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigures3to9Bugs reproduces all seven bug walkthroughs.
func BenchmarkFigures3to9Bugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 3; n <= 9; n++ {
			if _, err := eval.RunFigure(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFalsePositiveAnalysis reruns the §5.3 FP attribution.
func BenchmarkFalsePositiveAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFP()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Total), "false-positives")
		}
	}
}

// ---------------------------------------------------------------------------
// Pipeline micro-benchmarks (the paper reports 1-2 minutes per fast path on
// Clang; these measure the same stages on this front-end).
// ---------------------------------------------------------------------------

func corpusSource(b *testing.B) (string, string) {
	b.Helper()
	sc := corpus.ShowcaseByID("fig1a")
	return sc.Source, sc.FastFunc
}

// BenchmarkParse measures C parsing alone.
func BenchmarkParse(b *testing.B) {
	src, _ := corpusSource(b)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cparse.Parse("bench.c", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCFGBuild measures CFG construction for all functions.
func BenchmarkCFGBuild(b *testing.B) {
	src, _ := corpusSource(b)
	tu, err := cparse.Parse("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	fns := tu.Funcs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fn := range fns {
			if _, err := cfg.Build(fn); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPathExtraction measures bounded symbolic path enumeration.
func BenchmarkPathExtraction(b *testing.B) {
	src, fn := corpusSource(b)
	tu, err := cparse.Parse("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := paths.NewExtractor(tu, paths.DefaultConfig())
		if _, err := ex.Extract(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckOneFastPath measures the full check of a single fast path —
// the unit the paper quotes "1-2 minutes" for (theirs includes Clang).
func BenchmarkCheckOneFastPath(b *testing.B) {
	sc := corpus.ShowcaseByID("table5")
	a := pallas.New(pallas.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.AnalyzeSource("bench.c", sc.Source, sc.Spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Report.Warnings) == 0 {
			b.Fatal("expected a warning")
		}
	}
}

// BenchmarkAnalyzeWholeCorpusSerial measures end-to-end corpus analysis cost
// per case (the fleet the evaluation runs).
func BenchmarkAnalyzeWholeCorpusSerial(b *testing.B) {
	reg := corpus.Generate()
	a := pallas.New(pallas.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := reg.Cases[i%len(reg.Cases)]
		if _, err := a.AnalyzeSource(c.File, c.Source, c.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Parallel fans the corpus over a worker pool; compare with
// BenchmarkTable1Detection for the scaling headroom of the analysis.
func BenchmarkTable1Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTable1Parallel(0)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalBugs != 155 {
			b.Fatalf("bugs = %d", res.TotalBugs)
		}
	}
}

// BenchmarkCheckerAblation measures the per-checker decomposition run.
func BenchmarkCheckerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res.Rows {
				b.ReportMetric(float64(r.Bugs), r.Checker+"-bugs")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches: design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

// BenchmarkAblationInlineDepth compares path extraction with and without
// callee summarization (InlineDepth 0 vs 2): the summary machinery is what
// lets the checkers see through helpers without multiplying paths.
func BenchmarkAblationInlineDepth(b *testing.B) {
	src, fn := corpusSource(b)
	tu, err := cparse.Parse("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{0, 2} {
		name := "depth0"
		if depth == 2 {
			name = "depth2"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex := paths.NewExtractor(tu, paths.Config{MaxPaths: 512, MaxBlockVisits: 2, InlineDepth: depth})
				if _, err := ex.Extract(fn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingCorpusFraction sweeps the workload size (¼, ½, full
// corpus) to show analysis cost scales linearly in cases.
func BenchmarkScalingCorpusFraction(b *testing.B) {
	reg := corpus.Generate()
	a := pallas.New(pallas.Config{})
	for _, frac := range []struct {
		name string
		div  int
	}{{"quarter", 4}, {"half", 2}, {"full", 1}} {
		n := len(reg.Cases) / frac.div
		b.Run(frac.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, c := range reg.Cases[:n] {
					if _, err := a.AnalyzeSource(c.File, c.Source, c.Spec); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(n), "cases")
		})
	}
}

// BenchmarkBigFile measures the subsystem-scale unit end to end (parse,
// extract, all five checkers) — the closest analogue to the paper's
// per-fast-path cost on merged subsystem sources.
func BenchmarkBigFile(b *testing.B) {
	src, spec := corpus.BigFile()
	a := pallas.New(pallas.Config{})
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.AnalyzeSource("mm/page_alloc.c", src, spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Report.Warnings) != 2 {
			b.Fatalf("warnings = %d", len(res.Report.Warnings))
		}
	}
}

// BenchmarkAllSubsystemUnits analyzes all seven subsystem-scale units (one
// per evaluated system) end to end.
func BenchmarkAllSubsystemUnits(b *testing.B) {
	units := []func() (string, string){
		corpus.BigFile, corpus.BigFileNet, corpus.BigFileFS, corpus.BigFileDev,
		corpus.BigFileWB, corpus.BigFileSDN, corpus.BigFileMob,
	}
	a := pallas.New(pallas.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warnings := 0
		for _, get := range units {
			src, spec := get()
			res, err := a.AnalyzeSource("unit.c", src, spec)
			if err != nil {
				b.Fatal(err)
			}
			warnings += len(res.Report.Warnings)
		}
		if warnings != 18 {
			b.Fatalf("warnings = %d, want 18 across the seven units", warnings)
		}
	}
}

// BenchmarkAblationLoopBound compares 1 vs 2 vs 3 block visits: the loop
// bound trades path coverage against enumeration cost.
func BenchmarkAblationLoopBound(b *testing.B) {
	sc := corpus.ShowcaseByID("fig1a")
	tu, err := cparse.Parse("bench.c", sc.Source)
	if err != nil {
		b.Fatal(err)
	}
	for _, visits := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "visits1", 2: "visits2", 3: "visits3"}[visits], func(b *testing.B) {
			nPaths := 0
			for i := 0; i < b.N; i++ {
				ex := paths.NewExtractor(tu, paths.Config{MaxPaths: 4096, MaxBlockVisits: visits, InlineDepth: 2})
				fp, err := ex.Extract(sc.SlowFunc)
				if err != nil {
					b.Fatal(err)
				}
				nPaths = len(fp.Paths)
			}
			b.ReportMetric(float64(nPaths), "paths")
		})
	}
}
