package pallas

import (
	"pallas/internal/guard"
)

// Unit is one item of a batch analysis: a named source text plus its spec
// document (both may also carry inline annotations, as in AnalyzeSource).
type Unit struct {
	// Name identifies the unit in reports and diagnostics (usually a file name).
	Name string
	// Source is the C source text.
	Source string
	// Spec is the semantic specification document (may be empty).
	Spec string
}

// UnitResult is the outcome of one batch item. Exactly one of the following
// holds: Result is non-nil and Err nil (clean or degraded analysis — check
// Result.Degraded and Diagnostics), or Err is non-nil (the unit failed; a
// partial Result may still be attached when late stages failed).
type UnitResult struct {
	// Unit echoes the unit's Name.
	Unit string
	// Result is the analysis outcome, possibly partial. Nil when the unit
	// failed before producing anything.
	Result *Result
	// Err is the fatal error for this unit, nil on success. A panic anywhere
	// in the unit's pipeline surfaces here as a *guard.PanicError instead of
	// crashing the batch.
	Err error
	// Diagnostics aggregates the unit's degradation record (Result.Diagnostics
	// when a result exists, plus a terminal diagnostic when the unit failed).
	Diagnostics []Diagnostic
}

// AnalyzeMany analyzes units concurrently on a bounded worker pool and
// returns one UnitResult per unit, in input order regardless of completion
// order. Each unit is fault-isolated: its own budget (Config.Deadline etc.
// apply per unit, not per batch), its own panic guard, and its own error
// slot — one hostile unit cannot take down or starve its neighbours.
// workers <= 0 uses GOMAXPROCS.
func (a *Analyzer) AnalyzeMany(units []Unit, workers int) []UnitResult {
	out := make([]UnitResult, len(units))
	errs := guard.Pool(len(units), workers, func(i int) error {
		out[i].Unit = units[i].Name
		res, err := a.AnalyzeSource(units[i].Name, units[i].Source, units[i].Spec)
		out[i].Result = res
		if res != nil {
			out[i].Diagnostics = res.Diagnostics
		}
		return err
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		out[i].Unit = units[i].Name // set even if the closure died before line one
		out[i].Err = err
		out[i].Diagnostics = append(out[i].Diagnostics,
			guard.Diag(guard.StageBatch, units[i].Name, err, out[i].Result != nil))
	}
	return out
}
