package pallas

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pallas/internal/backoff"
	"pallas/internal/failpoint"
	"pallas/internal/guard"
	"pallas/internal/journal"
	"pallas/internal/metrics"
	"pallas/internal/overload"
	"pallas/internal/rcache"
	"pallas/internal/report"
)

// Unit is one item of a batch analysis: a named source text plus its spec
// document (both may also carry inline annotations, as in AnalyzeSource).
type Unit struct {
	// Name identifies the unit in reports, diagnostics and the checkpoint
	// journal (usually a file name).
	Name string
	// Source is the C source text.
	Source string
	// Spec is the semantic specification document (may be empty).
	Spec string
}

// Hash returns the unit's content hash — ContentHash over name, source and
// spec. The checkpoint journal keys resume decisions on it: a journal entry
// only lets a unit be skipped while its content is unchanged, so editing a
// source or spec file automatically forces re-analysis. (Result-cache keys
// additionally cover the analyzer configuration; see Analyzer.CacheKey.)
func (u Unit) Hash() string {
	return ContentHash(u.Name, u.Source, u.Spec)
}

// UnitResult is the outcome of one batch item. Exactly one of the following
// holds: Result is non-nil and Err nil (clean or degraded analysis — check
// Result.Degraded and Diagnostics), or Err is non-nil (the unit failed; a
// partial Result may still be attached when late stages failed).
type UnitResult struct {
	// Unit echoes the unit's Name.
	Unit string
	// Result is the analysis outcome, possibly partial. Nil when the unit
	// failed before producing anything. For a unit skipped on resume it is
	// reconstructed from the journal's stored report.
	Result *Result
	// Err is the fatal error for this unit, nil on success. A panic anywhere
	// in the unit's pipeline surfaces here as a *guard.PanicError instead of
	// crashing the batch.
	Err error
	// Diagnostics aggregates the unit's degradation record (Result.Diagnostics
	// when a result exists, plus a terminal diagnostic when the unit failed).
	Diagnostics []Diagnostic
	// Attempts is how many times the unit was analyzed in this run (0 when it
	// was skipped on resume).
	Attempts int
	// Skipped reports that the unit was not re-analyzed because the journal
	// already holds a terminal outcome for its current content hash.
	Skipped bool
	// Quarantined reports that the unit kept failing transiently (panic,
	// budget blowout, injected fault) through every allowed attempt and was
	// set aside so the batch could complete; its journal entry is terminal,
	// so resumed runs do not re-run it either.
	Quarantined bool
	// Cached reports that the unit's report was replayed from the result
	// cache (BatchOptions.CacheDir) instead of being re-analyzed.
	Cached bool
}

// BatchOptions configures AnalyzeBatch. The zero value reproduces plain
// AnalyzeMany: GOMAXPROCS workers, no retries, no journal.
type BatchOptions struct {
	// Workers bounds concurrent units; <= 0 means GOMAXPROCS. This is the
	// inter-unit bound only: each unit may additionally fan out
	// Config.AnalysisWorkers goroutines for its own functions and checkers,
	// so total parallelism is Workers × max(1, AnalysisWorkers). For
	// many-unit corpora prefer wide Workers with serial units; reserve
	// AnalysisWorkers for a few large units.
	Workers int
	// MinWorkers, when > 0, makes the batch self-pacing: an adaptive
	// limiter (the same AIMD machinery as `pallas serve`) watches per-unit
	// latency and shrinks effective parallelism from Workers toward this
	// floor when units slow down — e.g. the corpus hit its pathological
	// tail, or the host is overcommitted — then grows back on recovery.
	// 0 keeps the fixed-width pool.
	MinWorkers int
	// Retries is the maximum number of re-attempts for a unit that fails
	// transiently (a recovered panic, a budget violation surfacing as an
	// error, an injected failpoint fault). Deterministic malformed-input
	// errors are never retried. 0 disables retry.
	Retries int
	// RetryBackoff is the base delay before the first retry; the window
	// doubles per retry (capped at 30s) and the actual delay is drawn with
	// full jitter — uniform over the whole window — so simultaneously
	// failing units don't retry in lockstep. Default 100ms.
	RetryBackoff time.Duration
	// QuarantineAfter quarantines a unit after this many transient failures
	// even if retries remain, bounding the cost of a poisoned unit. <= 0
	// means Retries+1 (quarantine only after every retry is spent).
	QuarantineAfter int
	// JournalPath, when non-empty, appends every unit outcome to the
	// checkpoint journal at this path (created if missing, recovered if it
	// exists — torn tails truncated, corrupt lines quarantined).
	JournalPath string
	// Resume skips units whose latest journal record is terminal and still
	// matches the unit's content hash, replaying the stored report instead
	// of re-analyzing. Requires JournalPath.
	Resume bool
	// JournalGroupCommit opens the journal with batched fsyncs (see
	// journal.Options.GroupCommit): durability per record is unchanged, but
	// concurrent workers share fsyncs instead of paying one each.
	JournalGroupCommit bool
	// CacheDir, when non-empty, consults and populates the content-addressed
	// result cache rooted at this directory: a unit whose cache key (name,
	// source, spec, analyzer configuration — Analyzer.CacheKey) has a stored
	// entry replays the cached report byte-identically instead of being
	// analyzed. The same directory serves `pallas serve`, so a batch run
	// warms the server and vice versa.
	CacheDir string
	// CacheBytes bounds the cache's memory tier (<= 0: rcache default).
	// Only meaningful with CacheDir or Cache.
	CacheBytes int64
	// Sleep replaces time.Sleep between retry attempts; tests inject a
	// recorder here. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// BatchStats summarizes the durability machinery's activity in one batch
// run; eval harnesses surface these in their summaries.
type BatchStats struct {
	// Analyzed counts units actually analyzed this run (≥1 attempt).
	Analyzed int
	// Skipped counts units resumed from the journal without re-analysis.
	Skipped int
	// Retried counts retry attempts across all units.
	Retried int
	// Recovered counts units that failed transiently and then succeeded on a
	// later attempt.
	Recovered int
	// Quarantined counts units set aside after persistent transient failure.
	Quarantined int
	// Failed counts units with a terminal deterministic failure.
	Failed int
	// CacheHits counts units replayed from the result cache; CacheMisses
	// counts units that had to be analyzed because no entry existed.
	// Both stay zero when no cache is configured.
	CacheHits   int
	CacheMisses int
	// IncrFuncHits / IncrFuncMisses / IncrUnitHits / IncrUnitMisses are the
	// function-level memo's activity during this batch (the delta of
	// Analyzer.IncrStats across the run). All zero when Config.Incremental
	// is off.
	IncrFuncHits   int64
	IncrFuncMisses int64
	IncrUnitHits   int64
	IncrUnitMisses int64
	// FeasPruned / FeasContradictions are the feasibility layer's activity
	// during this batch (the delta of Analyzer.FeasStats across the run).
	// Both stay zero on the fast tier, which never prunes.
	FeasPruned         int64
	FeasContradictions int64
	// JournalRecovered, JournalTornTail and JournalQuarantined echo what
	// opening the journal had to repair (see journal.RecoveryReport).
	JournalRecovered   int
	JournalTornTail    bool
	JournalQuarantined int
}

// AnalyzeMany analyzes units concurrently on a bounded worker pool and
// returns one UnitResult per unit, in input order regardless of completion
// order. Each unit is fault-isolated: its own budget (Config.Deadline etc.
// apply per unit, not per batch), its own panic guard, and its own error
// slot — one hostile unit cannot take down or starve its neighbours.
// workers <= 0 uses GOMAXPROCS. It is AnalyzeBatch with zero options; use
// AnalyzeBatch directly for retries, checkpointing and resume.
func (a *Analyzer) AnalyzeMany(units []Unit, workers int) []UnitResult {
	out, _, _ := a.AnalyzeBatch(units, BatchOptions{Workers: workers})
	return out
}

// AnalyzeBatch analyzes units concurrently with the durability policy in
// opts: transient failures retry with exponential backoff and jitter,
// persistent offenders are quarantined instead of wedging the batch, every
// outcome is checkpointed to an append-only journal, and a resumed run skips
// units the journal already settled. The returned error is non-nil only for
// infrastructure failures (an unopenable journal) — per-unit failures live
// in their UnitResult.
func (a *Analyzer) AnalyzeBatch(units []Unit, opts BatchOptions) ([]UnitResult, BatchStats, error) {
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	maxAttempts := opts.Retries + 1
	quarantineAfter := opts.QuarantineAfter
	if quarantineAfter <= 0 || quarantineAfter > maxAttempts {
		quarantineAfter = maxAttempts
	}

	var stats BatchStats
	var jr *journal.Journal
	if opts.JournalPath != "" {
		var err error
		jr, err = journal.OpenOptions(opts.JournalPath, journal.Options{
			GroupCommit: opts.JournalGroupCommit,
		})
		if err != nil {
			return nil, stats, err
		}
		defer jr.Close()
		rec := jr.Recovery()
		stats.JournalRecovered = rec.Records
		stats.JournalTornTail = rec.TornTail
		stats.JournalQuarantined = rec.Quarantined
	} else if opts.Resume {
		return nil, stats, errors.New("pallas: BatchOptions.Resume requires JournalPath")
	}
	var cache *rcache.Cache
	if opts.CacheDir != "" {
		var err error
		cache, err = rcache.Open(rcache.Options{Dir: opts.CacheDir, MaxBytes: opts.CacheBytes})
		if err != nil {
			return nil, stats, err
		}
	}
	// An unopenable memo store is an infrastructure failure like an
	// unopenable journal — surface it here instead of silently running the
	// whole batch cold.
	if err := a.EnsureIncremental(); err != nil {
		return nil, stats, err
	}
	incrBefore, _ := a.IncrStats()
	feasBefore := a.FeasStats()
	// Batch mode shares the process-wide metrics registry with `pallas
	// serve`, so a mixed deployment (CLI warming a server's cache) shows up
	// in one scrape.
	reg := metrics.Default
	mAnalyzed := reg.Counter(MetricUnitsAnalyzed, "analysis pipeline executions (cache and resume misses)")
	mDegraded := reg.Counter(MetricDegraded, "analyses that completed partially")
	mQuarantined := reg.Counter(MetricQuarantined, "units quarantined after persistent transient failure")
	mCacheHits := reg.Counter(MetricCacheHits, "result-cache hits")
	mCacheMisses := reg.Counter(MetricCacheMisses, "result-cache misses")

	out := make([]UnitResult, len(units))
	var mu sync.Mutex
	count := func(f func(*BatchStats)) {
		mu.Lock()
		f(&stats)
		mu.Unlock()
	}

	// Self-pacing: with MinWorkers set, every unit passes through an
	// admission controller whose effective width adapts to observed unit
	// latency. The pool still provides the hard cap and panic isolation;
	// the controller only narrows how many of its workers run at once.
	var pacer *overload.Controller
	if opts.MinWorkers > 0 {
		width := opts.Workers
		if width <= 0 {
			width = runtime.GOMAXPROCS(0)
		}
		// No queue bound or deadline: batch units never shed, they just wait
		// for the adapted width — Acquire with a zero deadline cannot fail.
		pacer = overload.NewController(overload.NewLimiter(opts.MinWorkers, width), -1)
	}

	guard.Pool(len(units), opts.Workers, func(i int) error {
		u := units[i]
		if pacer != nil {
			if err := pacer.Acquire(context.Background(), time.Time{}); err != nil {
				return err
			}
			unitStart := time.Now()
			defer func() { pacer.Release(time.Since(unitStart)) }()
		}
		out[i].Unit = u.Name
		hash := u.Hash()
		if jr != nil && opts.Resume {
			if rec, ok := jr.Lookup(u.Name); ok && rec.Hash == hash && rec.Status.Terminal() {
				replayRecord(&out[i], rec)
				count(func(s *BatchStats) { s.Skipped++ })
				return nil
			}
		}
		if cache != nil {
			key := a.CacheKey(u)
			if e, ok := cache.Get(key); ok {
				replayCacheEntry(&out[i], e)
				count(func(s *BatchStats) { s.CacheHits++ })
				mCacheHits.Inc()
				// A cache-replayed outcome is still checkpointed so -resume
				// works against the journal alone.
				journalOutcome(jr, &out[i], u.Name, hash, 0, out[i].Result, nil, false)
				return nil
			}
			count(func(s *BatchStats) { s.CacheMisses++ })
			mCacheMisses.Inc()
		}
		count(func(s *BatchStats) { s.Analyzed++ })
		mAnalyzed.Inc()

		transientFails := 0
		for attempt := 1; ; attempt++ {
			var res *Result
			err := guard.Protect(guard.StageBatch, u.Name, func() error {
				r, aerr := a.AnalyzeSource(u.Name, u.Source, u.Spec)
				res = r
				return aerr
			})
			out[i].Attempts = attempt

			if err == nil {
				out[i].Result = res
				out[i].Diagnostics = res.Diagnostics
				if attempt > 1 {
					count(func(s *BatchStats) { s.Recovered++ })
				}
				if res.Degraded() {
					mDegraded.Inc()
				}
				if cache != nil {
					// Cache store failures degrade the unit's diagnostics,
					// never the unit: the report was produced either way.
					if cerr := storeCacheEntry(cache, a.CacheKey(u), u.Name, res); cerr != nil {
						out[i].Diagnostics = append(out[i].Diagnostics,
							guard.Diag(guard.StageStore, u.Name, cerr, true))
					}
				}
				journalOutcome(jr, &out[i], u.Name, hash, attempt, res, nil, false)
				return nil
			}

			transient := transientErr(err)
			if transient {
				transientFails++
			}
			if transient && attempt < maxAttempts && transientFails < quarantineAfter {
				count(func(s *BatchStats) { s.Retried++ })
				if jr != nil {
					// A retry record is non-terminal but durable, so a crash
					// between attempts preserves the attempt count.
					if jerr := jr.Append(journal.Record{
						Unit: u.Name, Hash: hash, Status: journal.StatusRetry,
						Attempt: attempt, Err: err.Error(),
					}); jerr != nil {
						out[i].Diagnostics = append(out[i].Diagnostics,
							guard.Diag(guard.StageStore, u.Name, jerr, true))
					}
				}
				opts.Sleep(backoff.Delay(opts.RetryBackoff, attempt))
				continue
			}

			// Terminal failure: deterministic errors fail outright, spent
			// transient errors quarantine the unit so the batch (and any
			// resumed run) moves on without it.
			out[i].Err = err
			out[i].Result = res
			if res != nil {
				out[i].Diagnostics = res.Diagnostics
			}
			out[i].Diagnostics = append(out[i].Diagnostics,
				guard.Diag(guard.StageBatch, u.Name, err, res != nil))
			if transient {
				out[i].Quarantined = true
				count(func(s *BatchStats) { s.Quarantined++ })
				mQuarantined.Inc()
			} else {
				count(func(s *BatchStats) { s.Failed++ })
			}
			journalOutcome(jr, &out[i], u.Name, hash, attempt, res, err, transient)
			return nil
		}
	})
	if incrAfter, ok := a.IncrStats(); ok {
		stats.IncrFuncHits = incrAfter.FuncHits - incrBefore.FuncHits
		stats.IncrFuncMisses = incrAfter.FuncMisses - incrBefore.FuncMisses
		stats.IncrUnitHits = incrAfter.UnitHits - incrBefore.UnitHits
		stats.IncrUnitMisses = incrAfter.UnitMisses - incrBefore.UnitMisses
	}
	feasAfter := a.FeasStats()
	stats.FeasPruned = feasAfter.Pruned - feasBefore.Pruned
	stats.FeasContradictions = feasAfter.Contradictions - feasBefore.Contradictions
	return out, stats, nil
}

// transientErr classifies an analysis failure: recovered panics, budget
// violations and injected failpoint faults are transient (worth retrying);
// malformed input is deterministic and is not.
func transientErr(err error) bool {
	var pe *guard.PanicError
	return errors.As(err, &pe) || guard.IsBudget(err) || errors.Is(err, failpoint.ErrInjected)
}

// journalOutcome appends a terminal record for a completed unit; journal
// failures degrade the unit's diagnostics rather than failing the unit.
func journalOutcome(jr *journal.Journal, out *UnitResult, name, hash string, attempt int,
	res *Result, err error, quarantined bool) {
	if jr == nil {
		return
	}
	rec := journal.Record{Unit: name, Hash: hash, Attempt: attempt}
	switch {
	case err == nil && res.Degraded():
		rec.Status = journal.StatusDegraded
	case err == nil:
		rec.Status = journal.StatusOK
	case quarantined:
		rec.Status = journal.StatusQuarantined
		rec.Err = err.Error()
	default:
		rec.Status = journal.StatusFailed
		rec.Err = err.Error()
	}
	if res != nil && res.Report != nil {
		rec.Degraded = res.Report.Degraded
		rec.Warnings = len(res.Report.Warnings)
		if b, merr := json.Marshal(res.Report); merr == nil {
			rec.Report = b
		}
	}
	rec.Diagnostics = out.Diagnostics
	if jerr := jr.Append(rec); jerr != nil {
		out.Diagnostics = append(out.Diagnostics,
			guard.Diag(guard.StageStore, name, jerr, true))
	}
}

// Shared metric names. Batch mode and `pallas serve` record into the same
// process-wide registry under these names, so one /metrics scrape covers
// both; docs/PROTOCOL.md documents the full set.
const (
	// MetricUnitsAnalyzed counts real analysis pipeline executions (cache
	// and resume misses).
	MetricUnitsAnalyzed = "pallas_units_analyzed_total"
	// MetricDegraded counts analyses that completed partially.
	MetricDegraded = "pallas_degraded_total"
	// MetricQuarantined counts units quarantined after persistent transient
	// failure.
	MetricQuarantined = "pallas_quarantined_total"
	// MetricCacheHits / MetricCacheMisses count result-cache outcomes.
	MetricCacheHits   = "pallas_cache_hits_total"
	MetricCacheMisses = "pallas_cache_misses_total"
)

// storeCacheEntry persists a completed analysis under its cache key. The
// stored report bytes are the single source for replay, so hits are
// byte-identical to the original marshaling.
func storeCacheEntry(cache *rcache.Cache, key, unit string, res *Result) error {
	if res == nil || res.Report == nil {
		return nil
	}
	b, err := json.Marshal(res.Report)
	if err != nil {
		return err
	}
	return cache.Put(&rcache.Entry{
		Key:         key,
		Unit:        unit,
		Report:      b,
		Diagnostics: res.Diagnostics,
		Degraded:    res.Report.Degraded,
		Warnings:    len(res.Report.Warnings),
		Sum:         rcache.ContentSum(b, nil),
	})
}

// replayCacheEntry reconstructs a UnitResult from a cache entry, mirroring
// replayRecord for journal resumes.
func replayCacheEntry(out *UnitResult, e *rcache.Entry) {
	out.Cached = true
	out.Attempts = 0
	out.Diagnostics = e.Diagnostics
	var rep report.Report
	if json.Unmarshal(e.Report, &rep) == nil {
		out.Result = &Result{Report: &rep, Diagnostics: e.Diagnostics}
	}
}

// replayRecord reconstructs a UnitResult from a terminal journal record so a
// resumed run reports skipped units exactly as the original run did.
func replayRecord(out *UnitResult, rec journal.Record) {
	out.Skipped = true
	out.Attempts = 0
	out.Quarantined = rec.Status == journal.StatusQuarantined
	out.Diagnostics = rec.Diagnostics
	if len(rec.Report) > 0 {
		var rep report.Report
		if json.Unmarshal(rec.Report, &rep) == nil {
			out.Result = &Result{Report: &rep, Diagnostics: rec.Diagnostics}
		}
	}
	if rec.Err != "" {
		out.Err = fmt.Errorf("%s (journaled on attempt %d)", rec.Err, rec.Attempt)
	}
}
