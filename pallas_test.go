package pallas

import (
	"bytes"
	"strings"
	"testing"
)

const quickSrc = `
// @pallas: fastpath get_page_fast
// @pallas: immutable gfp_mask
struct page { unsigned long private; };
struct page *get_page_fast(unsigned long gfp_mask, int order, struct page *pool)
{
	if (order == 0) {
		gfp_mask = gfp_mask & 7; /* deep bug */
		pool->private = gfp_mask;
		return pool;
	}
	return 0;
}
`

func TestAnalyzeSourceWithAnnotations(t *testing.T) {
	a := New(Config{})
	res, err := a.AnalyzeSource("quick.c", quickSrc, "")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(res.Report.Warnings) != 1 {
		t.Fatalf("want 1 warning, got %+v", res.Report.Warnings)
	}
	w := res.Report.Warnings[0]
	if w.Rule != "1.2" || w.Subject != "gfp_mask" {
		t.Errorf("warning = %+v", w)
	}
	if res.Paths.Get("get_page_fast") == nil {
		t.Error("paths for fast path missing from DB")
	}
	if res.Spec == nil || len(res.Spec.Immutables) != 1 {
		t.Errorf("spec = %+v", res.Spec)
	}
}

func TestAnalyzeWithExternalSpec(t *testing.T) {
	src := `
int rcv_fast(int x) { if (x) return 1; return 0; }
int rcv_slow(int x) { return 0; }
`
	a := New(Config{})
	res, err := a.AnalyzeSource("net.c", src, "pair rcv_fast rcv_slow\n")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(res.Report.Warnings) != 1 || res.Report.Warnings[0].Rule != "3.2" {
		t.Fatalf("want one 3.2 warning, got %+v", res.Report.Warnings)
	}
}

func TestAnalyzeWithIncludes(t *testing.T) {
	a := New(Config{
		Includes: map[string]string{
			"page.h": "struct page { unsigned long flags; };\n#define PAGE_LOCKED 1\n",
		},
	})
	src := `
#include "page.h"
int lock_fast(struct page *p)
{
	if (p->flags & PAGE_LOCKED)
		return -1;
	p->flags = p->flags | PAGE_LOCKED;
	return 0;
}
`
	res, err := a.AnalyzeSource("lock.c", src, "fastpath lock_fast\ncond flags\n")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(res.Report.Warnings) != 0 {
		t.Fatalf("clean include case warned: %+v", res.Report.Warnings)
	}
	if !strings.Contains(res.Merged, "struct page") {
		t.Error("merged text missing included header")
	}
}

func TestCheckerSubsetSelection(t *testing.T) {
	a := New(Config{Checkers: []string{"trigger-condition"}})
	res, err := a.AnalyzeSource("quick.c", quickSrc, "")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(res.Report.Warnings) != 0 {
		t.Fatalf("trigger checker should not flag the state bug: %+v", res.Report.Warnings)
	}
	if _, err := New(Config{Checkers: []string{"bogus"}}).AnalyzeSource("q.c", quickSrc, ""); err == nil {
		t.Fatal("unknown checker should error")
	}
}

func TestComparePaths(t *testing.T) {
	src := `
int fast(int a) { if (a == 1) return 0; return 1; }
int slow(int a, int b) { if (a == 1 && b) return 0; return 1; }
`
	a := New(Config{})
	res, err := a.AnalyzeSource("cmp.c", src, "pair fast slow\n")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	d, err := res.ComparePaths("fast", "slow")
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if len(d.VarsSlowOnly) == 0 {
		t.Errorf("diff should list b as slow-only: %+v", d)
	}
	if _, err := res.ComparePaths("fast", "missing"); err == nil {
		t.Fatal("missing function should error")
	}
}

func TestExtractPaths(t *testing.T) {
	a := New(Config{})
	fp, err := a.ExtractPaths("t.c", "int f(int a){ if (a) return 1; return 0; }", "f")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if len(fp.Paths) != 2 {
		t.Fatalf("want 2 paths, got %d", len(fp.Paths))
	}
}

func TestReportRenderers(t *testing.T) {
	a := New(Config{})
	res, err := a.AnalyzeSource("quick.c", quickSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	var txt, js bytes.Buffer
	if err := res.Report.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "rule 1.2") {
		t.Errorf("text output: %s", txt.String())
	}
	if err := res.Report.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"rule\": \"1.2\"") {
		t.Errorf("json output: %s", js.String())
	}
	if s := res.Report.Summary(); !strings.Contains(s, "Path State") {
		t.Errorf("summary: %s", s)
	}
}

func TestCheckerNames(t *testing.T) {
	names := CheckerNames()
	if len(names) != 5 {
		t.Fatalf("want 5 checkers, got %v", names)
	}
	want := []string{"path-state", "trigger-condition", "path-output", "fault-handling", "data-struct"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("checker[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestBadSpecErrors(t *testing.T) {
	a := New(Config{})
	if _, err := a.AnalyzeSource("t.c", "int f(void){return 0;}", "frobnicate x\n"); err == nil {
		t.Fatal("bad spec should error")
	}
}
