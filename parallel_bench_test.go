package pallas_test

// BenchmarkAnalyzeParallel and its CI artifact: intra-unit scaling of the
// analysis pipeline (per-function extraction + concurrent checkers) on a
// synthetic unit big enough that extraction dominates. The artifact test
// also re-asserts the determinism guarantee on the exact workload it times.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"pallas"
	"pallas/internal/failpoint"
)

// genParallelUnit builds a unit with nFuncs analyzed functions, each with
// nBranches independent symbolic branches (2^nBranches enumerated paths per
// function) plus helper calls that exercise the shared summary cache.
func genParallelUnit(nFuncs, nBranches int) (src, spec string) {
	var sb, sp strings.Builder
	sb.WriteString("static void touch(struct req *r) { r->flag = 1; }\n")
	sb.WriteString("static int clamp(int v) { if (v > 100) return 100; return v; }\n")
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&sb, "int fast%d(int a, struct req *r) {\n\tint rc = %d;\n", f, f)
		for i := 0; i < nBranches; i++ {
			if i%3 == 0 {
				fmt.Fprintf(&sb, "\tif (a > %d) { touch(r); rc = rc + %d; }\n", i+1, i+1)
			} else {
				fmt.Fprintf(&sb, "\tif (a > %d) rc = rc + %d;\n", i+1, i+1)
			}
		}
		sb.WriteString("\treturn clamp(rc);\n}\n")
		fmt.Fprintf(&sp, "fastpath fast%d\n", f)
	}
	return sb.String(), sp.String()
}

func BenchmarkAnalyzeParallel(b *testing.B) {
	src, spec := genParallelUnit(10, 8)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			a := pallas.New(pallas.Config{AnalysisWorkers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.AnalyzeSource("bench.c", src, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// parallelBench is the BENCH_parallel.json schema. The cpu-bound pair needs
// HostCPUs > 1 to show a ratio; the stall pair overlaps injected per-function
// latency and demonstrates pipeline concurrency on any host.
type parallelBench struct {
	Functions       int     `json:"functions"`
	Paths           int     `json:"paths"`
	Workers         int     `json:"workers"`
	HostCPUs        int     `json:"host_cpus"`
	Workers1MS      float64 `json:"workers_1_ms"`
	WorkersNMS      float64 `json:"workers_n_ms"`
	Speedup         float64 `json:"speedup"`
	StallWorkers1MS float64 `json:"stall_workers_1_ms"`
	StallWorkersNMS float64 `json:"stall_workers_n_ms"`
	StallSpeedup    float64 `json:"stall_speedup"`
	Identical       bool    `json:"identical_output"`
}

// TestAnalyzeParallelBenchArtifact times the same workload at 1 and 4
// intra-unit workers, asserts the outputs are byte-identical, and writes
// BENCH_parallel.json when PALLAS_BENCH_OUT is set. Two pairs are measured:
// the plain CPU-bound run (speedup requires a multi-core host), and a run
// with a 10ms injected stall per function (extract-func sleep failpoint),
// which shows the fan-out overlapping per-function latency regardless of
// core count. Ratios are recorded, not asserted: CI runners may have too few
// cores to guarantee one.
func TestAnalyzeParallelBenchArtifact(t *testing.T) {
	out := os.Getenv("PALLAS_BENCH_OUT")
	if testing.Short() && out == "" {
		t.Skip("short mode")
	}
	const workers = 4
	src, spec := genParallelUnit(10, 8)

	run := func(w int) (time.Duration, string, int) {
		a := pallas.New(pallas.Config{AnalysisWorkers: w})
		best := time.Duration(0)
		var rendered string
		paths := 0
		for i := 0; i < 3; i++ {
			start := time.Now()
			res, err := a.AnalyzeSource("bench.c", src, spec)
			if err != nil {
				t.Fatal(err)
			}
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
			var rb bytes.Buffer
			if err := res.Report.WriteJSON(&rb); err != nil {
				t.Fatal(err)
			}
			pb, err := json.Marshal(res.Paths)
			if err != nil {
				t.Fatal(err)
			}
			rendered = rb.String() + string(pb)
			paths = res.Paths.NumPaths()
		}
		return best, rendered, paths
	}

	serialTime, serialOut, nPaths := run(1)
	parTime, parOut, _ := run(workers)
	identical := serialOut == parOut
	if !identical {
		t.Error("parallel output is not byte-identical to serial output")
	}

	// Latency-overlap pair: every function's extraction carries a 10ms stall,
	// so a working fan-out finishes ~workers× sooner even on one core. The
	// sleep action changes timing only, so output stays identical too.
	if err := failpoint.Arm("extract-func=sleep:10ms"); err != nil {
		t.Fatal(err)
	}
	stallSerial, stallSerialOut, _ := run(1)
	stallPar, stallParOut, _ := run(workers)
	failpoint.Disarm()
	if stallSerialOut != serialOut || stallParOut != serialOut {
		t.Error("stalled runs changed analysis output")
	}

	bench := parallelBench{
		Functions:       10,
		Paths:           nPaths,
		Workers:         workers,
		HostCPUs:        runtime.NumCPU(),
		Workers1MS:      float64(serialTime.Microseconds()) / 1000,
		WorkersNMS:      float64(parTime.Microseconds()) / 1000,
		Speedup:         float64(serialTime.Nanoseconds()) / float64(parTime.Nanoseconds()),
		StallWorkers1MS: float64(stallSerial.Microseconds()) / 1000,
		StallWorkersNMS: float64(stallPar.Microseconds()) / 1000,
		StallSpeedup:    float64(stallSerial.Nanoseconds()) / float64(stallPar.Nanoseconds()),
		Identical:       identical,
	}
	t.Logf("analyze parallel: %d funcs, %d paths, %d cpus; cpu-bound 1w %.1fms vs %dw %.1fms (%.2fx); stalled 1w %.1fms vs %dw %.1fms (%.2fx)",
		bench.Functions, bench.Paths, bench.HostCPUs,
		bench.Workers1MS, workers, bench.WorkersNMS, bench.Speedup,
		bench.StallWorkers1MS, workers, bench.StallWorkersNMS, bench.StallSpeedup)
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
