package pallas_test

// The incremental engine's differential invariant: after editing one
// function in a unit, an incremental re-check re-analyzes only that function
// and its transitive callers — everything else replays from the memo — and
// the report and path database are byte-identical to a cold run, at any
// AnalysisWorkers count.

import (
	"encoding/json"
	"fmt"
	"testing"

	"pallas"
	"pallas/internal/failpoint"
)

// incrSrc builds the test unit: top → mid → leaf call chain plus an
// independent sibling, two analyzed fast paths (top, sib) and a seeded
// immutable-overwrite warning in top. leafBody parameterizes the one edit.
func incrSrc(leafBody string) string {
	return fmt.Sprintf(`// @pallas: fastpath top
// @pallas: fastpath sib
// @pallas: immutable mode
int limit = 8;
int leaf(int a) { return %s; }
int mid(int a) { return leaf(a) + 2; }
int top(int mode)
{
	if (mode == 0) {
		mode = 5;
		return 1;
	}
	return mid(mode);
}
int sib(int mode)
{
	if (mode == 2) {
		return 0;
	}
	return 1;
}
`, leafBody)
}

// resultBytes marshals the two replay-sensitive outputs; byte equality here
// is byte equality of everything `check` prints or saves for the unit.
func resultBytes(t *testing.T, res *pallas.Result) (string, string) {
	t.Helper()
	rb, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	db, err := json.Marshal(res.Paths)
	if err != nil {
		t.Fatal(err)
	}
	return string(rb), string(db)
}

func analyzeIncr(t *testing.T, cfg pallas.Config, src string) *pallas.Result {
	t.Helper()
	a := pallas.New(cfg)
	if err := a.EnsureIncremental(); err != nil {
		t.Fatal(err)
	}
	res, err := a.AnalyzeSource("unit.c", src, "")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIncrementalDifferentialParallel is the engine's core guarantee, table-
// tested across worker counts: cold output ≡ incremental output for a cold
// store, a same-source replay, a formatting-only edit, and a one-function
// edit — and the edit re-analyzes exactly the functions it must.
func TestIncrementalDifferentialParallel(t *testing.T) {
	v1 := incrSrc("a + 1")
	v2 := incrSrc("a + 7")                    // leaf edit: invalidates top via mid, not sib
	v1fmt := incrSrc("a + 1 /* unchanged */") // same lines, same AST

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cold := pallas.Config{AnalysisWorkers: workers}

			coldV1, err := pallas.New(cold).AnalyzeSource("unit.c", v1, "")
			if err != nil {
				t.Fatal(err)
			}
			coldV2, err := pallas.New(cold).AnalyzeSource("unit.c", v2, "")
			if err != nil {
				t.Fatal(err)
			}
			wantRep1, wantDB1 := resultBytes(t, coldV1)
			wantRep2, wantDB2 := resultBytes(t, coldV2)
			if coldV1.Report == nil || len(coldV1.Report.Warnings) == 0 {
				t.Fatal("corpus lost its seeded warning; the diff proves nothing")
			}

			dir := t.TempDir()
			icfg := cold
			icfg.Incremental = &pallas.IncrementalOptions{Dir: dir}

			// Cold store: everything misses, output matches the plain run.
			a1 := pallas.New(icfg)
			if err := a1.EnsureIncremental(); err != nil {
				t.Fatal(err)
			}
			res, err := a1.AnalyzeSource("unit.c", v1, "")
			if err != nil {
				t.Fatal(err)
			}
			if rep, db := resultBytes(t, res); rep != wantRep1 || db != wantDB1 {
				t.Fatal("incremental cold run drifted from plain run")
			}
			st, _ := a1.IncrStats()
			if st.FuncHits != 0 || st.FuncMisses != 2 || st.UnitHits != 0 || st.UnitMisses != 1 {
				t.Fatalf("cold-store stats = %+v, want 2 func misses / 1 unit miss", st)
			}

			// Same source, same analyzer: the whole-unit verdict replays.
			res, err = a1.AnalyzeSource("unit.c", v1, "")
			if err != nil {
				t.Fatal(err)
			}
			if rep, db := resultBytes(t, res); rep != wantRep1 || db != wantDB1 {
				t.Fatal("unit-verdict replay drifted from plain run")
			}
			if st, _ = a1.IncrStats(); st.UnitHits != 1 {
				t.Fatalf("stats after replay = %+v, want 1 unit hit", st)
			}

			// One-function edit, fresh analyzer over the same store: only the
			// edited chain (top, through mid → leaf) re-analyzes; sib replays.
			// An armed extraction fault for sib proves its walk never ran.
			a2 := pallas.New(icfg)
			if err := a2.EnsureIncremental(); err != nil {
				t.Fatal(err)
			}
			if err := failpoint.Arm("extract-func=error/sib"); err != nil {
				t.Fatal(err)
			}
			res, err = a2.AnalyzeSource("unit.c", v2, "")
			failpoint.Disarm()
			if err != nil {
				t.Fatalf("warm re-check extracted the unchanged function: %v", err)
			}
			if rep, db := resultBytes(t, res); rep != wantRep2 || db != wantDB2 {
				t.Fatal("incremental re-check after a one-function edit drifted from plain run")
			}
			st, _ = a2.IncrStats()
			if st.FuncHits != 1 || st.FuncMisses != 1 {
				t.Fatalf("warm-edit stats = %+v, want sib hit + top miss", st)
			}
			if st.UnitHits != 0 || st.UnitMisses != 1 {
				t.Fatalf("warm-edit stats = %+v, want 1 unit miss", st)
			}

			// The continuing analyzer re-checks the edited source: a2 already
			// memoized v2's verdict in the shared store, so this replays it.
			res, err = a1.AnalyzeSource("unit.c", v2, "")
			if err != nil {
				t.Fatal(err)
			}
			if rep, db := resultBytes(t, res); rep != wantRep2 || db != wantDB2 {
				t.Fatal("same-analyzer re-check drifted from plain run")
			}
			st, _ = a1.IncrStats()
			if st.UnitHits != 2 { // v1 verdict earlier, v2 verdict now
				t.Fatalf("stats after edit = %+v, want 2 unit hits", st)
			}

			// Invalidation accounting needs function-level lookups under both
			// fingerprints by one store, so it gets a store with no v2
			// verdict: v1 then v2 on a fresh directory. Exactly one slot —
			// top — changes fingerprint; sib replays.
			inv := cold
			inv.Incremental = &pallas.IncrementalOptions{Dir: t.TempDir()}
			ai := pallas.New(inv)
			if err := ai.EnsureIncremental(); err != nil {
				t.Fatal(err)
			}
			for _, src := range []string{v1, v2} {
				if _, err := ai.AnalyzeSource("unit.c", src, ""); err != nil {
					t.Fatal(err)
				}
			}
			st, _ = ai.IncrStats()
			if st.FuncInvalidations != 1 {
				t.Fatalf("v1→v2 stats = %+v, want exactly 1 invalidation (top)", st)
			}
			if st.FuncHits != 1 || st.FuncMisses != 3 {
				t.Fatalf("v1→v2 stats = %+v, want 1 hit (sib) / 3 misses", st)
			}

			// Formatting-only edit: the unit fingerprint is unchanged, so the
			// verdict for v1 replays outright.
			a3 := pallas.New(icfg)
			if err := a3.EnsureIncremental(); err != nil {
				t.Fatal(err)
			}
			res, err = a3.AnalyzeSource("unit.c", v1fmt, "")
			if err != nil {
				t.Fatal(err)
			}
			if rep, db := resultBytes(t, res); rep != wantRep1 || db != wantDB1 {
				t.Fatal("formatting-only edit changed the output")
			}
			if st, _ = a3.IncrStats(); st.UnitHits != 1 || st.FuncMisses != 0 {
				t.Fatalf("formatting-edit stats = %+v, want a pure unit hit", st)
			}
		})
	}
}

// TestIncrementalBatchStats: AnalyzeBatch surfaces the memo's activity delta
// in BatchStats, and cross-unit function reuse works (the func key excludes
// the unit name).
func TestIncrementalBatchStats(t *testing.T) {
	dir := t.TempDir()
	cfg := pallas.Config{Incremental: &pallas.IncrementalOptions{Dir: dir}}
	units := []pallas.Unit{
		{Name: "a.c", Source: incrSrc("a + 1")},
		{Name: "b.c", Source: incrSrc("a + 1")}, // identical code, distinct unit
	}

	_, stats, err := pallas.New(cfg).AnalyzeBatch(units, pallas.BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// a.c misses everything; b.c's functions hit (same code, key excludes the
	// unit name) while its unit verdict misses (key includes the unit name).
	if stats.IncrFuncHits != 2 || stats.IncrFuncMisses != 2 {
		t.Fatalf("stats = %+v, want 2 func hits (b.c reusing a.c) and 2 misses", stats)
	}
	if stats.IncrUnitHits != 0 || stats.IncrUnitMisses != 2 {
		t.Fatalf("stats = %+v, want 2 unit misses", stats)
	}

	// Second batch over the same store: both verdicts replay.
	_, stats, err = pallas.New(cfg).AnalyzeBatch(units, pallas.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.IncrUnitHits != 2 || stats.IncrFuncMisses != 0 {
		t.Fatalf("second-batch stats = %+v, want 2 unit hits and no extraction", stats)
	}
}

// TestIncrementalDegradedRunsNotMemoized: a unit with diagnostics must not
// land in the verdict memo — degraded output is timing- and mode-dependent.
func TestIncrementalDegradedRunsNotMemoized(t *testing.T) {
	dir := t.TempDir()
	cfg := pallas.Config{
		KeepGoing:   true,
		Incremental: &pallas.IncrementalOptions{Dir: dir},
	}
	src := "// @pallas: fastpath f\nint f(int a) { return g(; }\n"

	r1 := analyzeIncr(t, cfg, src)
	if r1.Report == nil || !r1.Report.Degraded {
		t.Skip("source did not degrade; test premise gone")
	}
	a := pallas.New(cfg)
	if err := a.EnsureIncremental(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AnalyzeSource("unit.c", src, ""); err != nil {
		t.Fatal(err)
	}
	if st, _ := a.IncrStats(); st.UnitHits != 0 {
		t.Fatalf("degraded verdict was replayed: %+v", st)
	}
}
