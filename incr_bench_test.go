package pallas_test

// TestAnalyzeIncrBenchArtifact and BENCH_incr.json: the cold-vs-warm story
// of the incremental engine on a multi-unit corpus. Cold run on an empty
// memo, one-function edit, warm re-check on the same store — the warm run
// replays every untouched unit's verdict and the edited unit's unchanged
// functions, re-analyzing only the edited function and its transitive
// callers, with output byte-identical to a from-scratch run. Two pairs are
// measured, as in BENCH_parallel.json: the plain cpu-bound corpus, and the
// same corpus with an injected per-function extraction stall (extract-func
// sleep failpoint), which models the expensive-extraction regime — there the
// warm re-check's O(diff) behavior shows as a large wall-clock ratio because
// memoized functions and replayed verdicts never reach the stall.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"pallas"
	"pallas/internal/failpoint"
)

// genIncrUnit builds one corpus unit whose function bodies are offset by the
// unit index, so units share structure but not fingerprints (cross-unit memo
// reuse would otherwise pre-warm the cold run). Each analyzed function calls
// a per-unit helper chain, giving the edit a transitive blast radius.
func genIncrUnit(u, nFuncs, nBranches int) (src, spec string) {
	var sb, sp strings.Builder
	fmt.Fprintf(&sb, "static int seed%[1]d(int v) { return v + %[1]d; }\n", u)
	fmt.Fprintf(&sb, "static int scale%[1]d(int v) { return seed%[1]d(v) * 2; }\n", u)
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&sb, "int fast%d(int a, struct req *r) {\n\tint rc = scale%d(%d);\n", f, u, f)
		for i := 0; i < nBranches; i++ {
			fmt.Fprintf(&sb, "\tif (a > %d) rc = rc + %d;\n", i+1, u+i+1)
		}
		sb.WriteString("\treturn rc;\n}\n")
		fmt.Fprintf(&sp, "fastpath fast%d\n", f)
	}
	return sb.String(), sp.String()
}

// incrBench is the BENCH_incr.json schema.
type incrBench struct {
	Units           int     `json:"units"`
	FuncsTotal      int     `json:"funcs_total"`
	ColdMS          float64 `json:"cold_ms"`
	WarmMS          float64 `json:"warm_ms"`
	Speedup         float64 `json:"speedup"`
	StallColdMS     float64 `json:"stall_cold_ms"`
	StallWarmMS     float64 `json:"stall_warm_ms"`
	StallSpeedup    float64 `json:"stall_speedup"`
	FuncsReused     int     `json:"funcs_reused"`
	FuncsReanalyzed int     `json:"funcs_reanalyzed"`
	UnitVerdictHits int     `json:"unit_verdict_hits"`
	Identical       bool    `json:"identical_output"`
}

func TestAnalyzeIncrBenchArtifact(t *testing.T) {
	out := os.Getenv("PALLAS_BENCH_OUT")
	if testing.Short() && out == "" {
		t.Skip("short mode")
	}
	const (
		nUnits    = 8
		nFuncs    = 8
		nBranches = 5
	)
	type unit struct{ name, src, spec string }
	corpus := make([]unit, nUnits)
	for u := range corpus {
		src, spec := genIncrUnit(u, nFuncs, nBranches)
		corpus[u] = unit{name: fmt.Sprintf("u%d.c", u), src: src, spec: spec}
	}
	// The edit: one constant in one function of one unit.
	edited := make([]unit, nUnits)
	copy(edited, corpus)
	edited[3].src = strings.Replace(edited[3].src, "int rc = scale3(5);", "int rc = scale3(55);", 1)
	if edited[3].src == corpus[3].src {
		t.Fatal("edit did not land")
	}

	render := func(a *pallas.Analyzer, units []unit) (time.Duration, string) {
		var sb strings.Builder
		start := time.Now()
		for _, u := range units {
			res, err := a.AnalyzeSource(u.name, u.src, u.spec)
			if err != nil {
				t.Fatal(err)
			}
			var rb bytes.Buffer
			if err := res.Report.WriteJSON(&rb); err != nil {
				t.Fatal(err)
			}
			pb, err := json.Marshal(res.Paths)
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(rb.Bytes())
			sb.Write(pb)
		}
		return time.Since(start), sb.String()
	}

	// Reference: the edited corpus from scratch, no memo anywhere.
	_, wantOut := render(pallas.New(pallas.Config{}), edited)

	// Cpu-bound pair.
	icfg := pallas.Config{Incremental: &pallas.IncrementalOptions{Dir: t.TempDir()}}
	coldTime, _ := render(pallas.New(icfg), corpus)
	warmA := pallas.New(icfg)
	warmTime, warmOut := render(warmA, edited)
	identical := warmOut == wantOut
	if !identical {
		t.Error("warm incremental output is not byte-identical to a from-scratch run")
	}
	st, ok := warmA.IncrStats()
	if !ok {
		t.Fatal("incremental stats unavailable")
	}
	// Only the edited function misses: its siblings replay from the function
	// memo and every untouched unit replays its whole verdict.
	if st.UnitHits != nUnits-1 {
		t.Errorf("unit verdict hits = %d, want %d", st.UnitHits, nUnits-1)
	}
	if st.FuncMisses != 1 || st.FuncHits != nFuncs-1 {
		t.Errorf("func stats = %+v, want 1 miss (the edited function) and %d hits", st, nFuncs-1)
	}

	// Stalled pair: every real per-function extraction costs an extra 25ms in
	// both runs. Memoized work skips the stall because it skips extraction —
	// that asymmetry IS the incremental win being measured. The sleep action
	// changes timing only, so outputs stay identical.
	scfg := pallas.Config{Incremental: &pallas.IncrementalOptions{Dir: t.TempDir()}}
	if err := failpoint.Arm("extract-func=sleep:25ms"); err != nil {
		t.Fatal(err)
	}
	stallCold, _ := render(pallas.New(scfg), corpus)
	stallWarm, stallOut := render(pallas.New(scfg), edited)
	failpoint.Disarm()
	if stallOut != wantOut {
		t.Error("stalled warm output is not byte-identical to a from-scratch run")
	}

	total := nUnits * nFuncs
	bench := incrBench{
		Units:           nUnits,
		FuncsTotal:      total,
		ColdMS:          float64(coldTime.Microseconds()) / 1000,
		WarmMS:          float64(warmTime.Microseconds()) / 1000,
		Speedup:         float64(coldTime.Nanoseconds()) / float64(warmTime.Nanoseconds()),
		StallColdMS:     float64(stallCold.Microseconds()) / 1000,
		StallWarmMS:     float64(stallWarm.Microseconds()) / 1000,
		StallSpeedup:    float64(stallCold.Nanoseconds()) / float64(stallWarm.Nanoseconds()),
		FuncsReused:     total - int(st.FuncMisses),
		FuncsReanalyzed: int(st.FuncMisses),
		UnitVerdictHits: int(st.UnitHits),
		Identical:       identical,
	}
	t.Logf("incr bench: %d units x %d funcs; cpu-bound cold %.1fms vs warm %.1fms (%.1fx); stalled cold %.1fms vs warm %.1fms (%.1fx); %d/%d funcs reused, %d verdicts replayed",
		bench.Units, nFuncs, bench.ColdMS, bench.WarmMS, bench.Speedup,
		bench.StallColdMS, bench.StallWarmMS, bench.StallSpeedup,
		bench.FuncsReused, total, bench.UnitVerdictHits)
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
