package pallas_test

// Differential guard for the fast tier: analyzing the full corpus with
// -precision fast (and with the zero-value Config, which means fast) must
// produce byte-identical output to the engine as it stood before the
// feasibility layer landed — report JSON, path database JSON, and cache key,
// for every case. testdata/corpus_fast_golden.txt holds the pre-layer
// engine's hash over exactly this recipe; if this test fails, the fast tier
// has drifted and every warm cache and memo store goes stale with it. Do not
// update the golden without that migration story.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"pallas"
	"pallas/internal/corpus"
)

// corpusOutputHash renders every corpus case's analysis output under cfg and
// hashes the concatenation in sorted-ID order.
func corpusOutputHash(t *testing.T, cfg pallas.Config) string {
	t.Helper()
	reg := corpus.Generate()
	a := pallas.New(cfg)
	h := sha256.New()
	for _, id := range reg.SortIDs() {
		c := reg.Get(id)
		res, err := a.AnalyzeSource(c.File, c.Source, c.Spec)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var rb bytes.Buffer
		if err := res.Report.WriteJSON(&rb); err != nil {
			t.Fatal(err)
		}
		pb, err := json.Marshal(res.Paths)
		if err != nil {
			t.Fatal(err)
		}
		key := a.CacheKey(pallas.Unit{Name: c.File, Source: c.Source, Spec: c.Spec})
		fmt.Fprintf(h, "%s\n%s\n%s\n%s\n", id, rb.String(), pb, key)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestPrecisionFastMatchesSeedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: full-corpus differential")
	}
	b, err := os.ReadFile("testdata/corpus_fast_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSpace(string(b))
	if got := corpusOutputHash(t, pallas.Config{}); got != want {
		t.Errorf("zero-config corpus output drifted from the pre-layer seed: got %s, want %s", got, want)
	}
	if got := corpusOutputHash(t, pallas.Config{Precision: "fast"}); got != want {
		t.Errorf("-precision fast corpus output drifted from the pre-layer seed: got %s, want %s", got, want)
	}
}
